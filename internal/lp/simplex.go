// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  a_i · x  (≤ | = | ≥)  b_i   for each row i
//	            x ≥ 0
//
// It is the substrate behind the paper's Section 5 linear programming
// formulation and the Section 7.1 lower bound (the paper used GLPK; this
// solver replaces it with a stdlib-only implementation). Degeneracy is
// handled by switching from Dantzig pricing to Bland's rule after a stall,
// which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

const (
	LE Op = iota // a·x ≤ b
	EQ           // a·x = b
	GE           // a·x ≥ b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse row a·x (op) b.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Problem is an LP under construction. Variables are dense indices
// [0, NumVars); all variables are implicitly non-negative.
type Problem struct {
	NumVars int
	Obj     []float64 // minimization objective, length NumVars
	Rows    []Constraint
}

// NewProblem returns a problem with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Obj: make([]float64, n)}
}

// SetObjective sets the coefficient of variable v in the minimization
// objective.
func (p *Problem) SetObjective(v int, c float64) { p.Obj[v] = c }

// AddConstraint appends a row. Terms may mention each variable at most
// once.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	p.Rows = append(p.Rows, Constraint{Terms: terms, Op: op, RHS: rhs})
}

// Status reports the outcome of Solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution holds an LP optimum.
type Solution struct {
	Status Status
	Value  float64   // objective value (meaningful when Optimal)
	X      []float64 // primal values, length NumVars (when Optimal)
}

const eps = 1e-9

// ErrIterationLimit is returned if the simplex fails to converge within
// the safety iteration budget (should not happen with Bland's rule; kept
// as a hard stop against numerical pathologies).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// Solve runs the two-phase simplex method and returns the optimum, the
// infeasibility/unboundedness status, or ErrIterationLimit.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.Rows)
	n := p.NumVars

	// Normalize rows to b >= 0, then add one slack (LE), one surplus (GE)
	// per row, and one artificial variable per EQ/GE row (and per LE row
	// whose slack cannot seed the basis, i.e. none after normalization).
	type rowInfo struct {
		op  Op
		rhs float64
	}
	rows := make([]rowInfo, m)
	dense := make([][]float64, m)
	for i, r := range p.Rows {
		d := make([]float64, n)
		for _, t := range r.Terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("lp: row %d references variable %d of %d", i, t.Var, n)
			}
			d[t.Var] += t.Coef
		}
		op, rhs := r.Op, r.RHS
		if rhs < 0 {
			for j := range d {
				d[j] = -d[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		dense[i] = d
		rows[i] = rowInfo{op: op, rhs: rhs}
	}

	slackOf := make([]int, m) // column of slack/surplus, -1 if none
	artOf := make([]int, m)   // column of artificial, -1 if none
	cols := n                 // running column count
	for i := range rows {
		switch rows[i].op {
		case LE:
			slackOf[i] = cols
			cols++
			artOf[i] = -1
		case GE:
			slackOf[i] = cols
			cols++
			artOf[i] = cols
			cols++
		case EQ:
			slackOf[i] = -1
			artOf[i] = cols
			cols++
		}
	}
	numArt := 0
	for i := range rows {
		if artOf[i] >= 0 {
			numArt++
		}
	}

	// Tableau: m rows × (cols + 1); last column is RHS.
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i := range rows {
		t := make([]float64, cols+1)
		copy(t, dense[i])
		if slackOf[i] >= 0 {
			if rows[i].op == LE {
				t[slackOf[i]] = 1
			} else {
				t[slackOf[i]] = -1
			}
		}
		if artOf[i] >= 0 {
			t[artOf[i]] = 1
			basis[i] = artOf[i]
		} else {
			basis[i] = slackOf[i]
		}
		t[cols] = rows[i].rhs
		tab[i] = t
	}

	s := &simplex{tab: tab, basis: basis, cols: cols, numVars: n}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificials.
		phase1 := make([]float64, cols)
		for i := range rows {
			if artOf[i] >= 0 {
				phase1[artOf[i]] = 1
			}
		}
		val, err := s.run(phase1, nil)
		if err != nil {
			return nil, err
		}
		if val > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any residual artificial out of the basis (degenerate).
		isArt := make([]bool, cols)
		for i := range rows {
			if artOf[i] >= 0 {
				isArt[artOf[i]] = true
			}
		}
		for i := range s.basis {
			if !isArt[s.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < cols && !pivoted; j++ {
				if !isArt[j] && math.Abs(s.tab[i][j]) > eps {
					s.pivot(i, j)
					pivoted = true
				}
			}
			// A row with only artificial support is redundant (all-zero
			// after phase 1); leaving the artificial basic at value 0 is
			// harmless as long as it never re-enters, which the banned
			// list below enforces.
		}
		s.banned = isArt
	}

	// Phase 2: original objective (padded to all columns).
	obj := make([]float64, cols)
	copy(obj, p.Obj)
	if _, err := s.run(obj, s.banned); err != nil {
		return nil, err
	}
	if s.unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.tab[i][cols]
		}
	}
	var val float64
	for j := 0; j < n; j++ {
		val += p.Obj[j] * x[j]
	}
	return &Solution{Status: Optimal, Value: val, X: x}, nil
}

// simplex carries the mutable tableau state across phases.
type simplex struct {
	tab       [][]float64
	basis     []int
	cols      int
	numVars   int
	banned    []bool // columns that may not enter (artificials in phase 2)
	unbounded bool
}

// run optimizes the given objective over the current tableau. It returns
// the objective value reached (for phase 1 feasibility checks).
func (s *simplex) run(obj []float64, banned []bool) (float64, error) {
	m := len(s.tab)
	cols := s.cols
	// Reduced objective row: z_j - c_j, computed fresh.
	z := make([]float64, cols+1)
	for j := 0; j <= cols; j++ {
		z[j] = 0
	}
	for j := 0; j < cols; j++ {
		z[j] = -obj[j]
	}
	for i := 0; i < m; i++ {
		cb := obj[s.basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			z[j] += cb * s.tab[i][j]
		}
	}

	s.unbounded = false
	maxIter := 200 * (m + cols + 10)
	blandAfter := 20 * (m + cols + 10)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return 0, ErrIterationLimit
		}
		// Entering column: most positive reduced cost (Dantzig), or the
		// first positive one (Bland) once we may be cycling.
		enter := -1
		if iter < blandAfter {
			best := eps
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > best {
					best = z[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if z[j] > eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// z[cols] tracks Σ c_B · b, the objective value of the current
			// basic solution.
			return z[cols], nil
		}
		// Leaving row: minimum ratio; Bland tie-break by basis index.
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			a := s.tab[i][enter]
			if a <= eps {
				continue
			}
			ratio := s.tab[i][cols] / a
			if leave < 0 || ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && s.basis[i] < s.basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave < 0 {
			s.unbounded = true
			return math.Inf(-1), nil
		}
		s.pivot(leave, enter)
		// Update reduced row.
		f := z[enter]
		if f != 0 {
			for j := 0; j <= s.cols; j++ {
				z[j] -= f * s.tab[leave][j]
			}
			z[enter] = 0
		}
	}
}

// pivot makes column enter basic in row leave.
func (s *simplex) pivot(leave, enter int) {
	m := len(s.tab)
	cols := s.cols
	row := s.tab[leave]
	d := row[enter]
	for j := 0; j <= cols; j++ {
		row[j] /= d
	}
	row[enter] = 1
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		t := s.tab[i]
		for j := 0; j <= cols; j++ {
			t[j] -= f * row[j]
		}
		t[enter] = 0
	}
	s.basis[leave] = enter
}
