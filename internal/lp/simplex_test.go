package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestBasicLE(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3  => x=1? Let's check:
	// maximize x + 2y: best y=3, x=1 -> 7.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	p.AddConstraint([]Term{{1, 1}}, LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, -7) {
		t.Fatalf("got %v value %v, want -7", sol.Status, sol.Value)
	}
	if !approx(sol.X[0], 1) || !approx(sol.X[1], 3) {
		t.Errorf("x = %v, want [1 3]", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// min x + y  s.t. x + y = 5, x - y = 1  => x=3, y=2, value 5.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, 5) || !approx(sol.X[0], 3) || !approx(sol.X[1], 2) {
		t.Fatalf("got %v %v %v", sol.Status, sol.Value, sol.X)
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 => y=8? value 2*2+3*8=28 vs
	// x=10,y=0: 20. Optimal x=10.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, 20) {
		t.Fatalf("got %v value %v, want 20", sol.Status, sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, 3) {
		t.Fatalf("got %v %v, want optimal 3", sol.Status, sol.Value)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic cycling-prone problem (Beale); Bland fallback must solve it.
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, -0.05) {
		t.Fatalf("got %v %v, want optimal -0.05", sol.Status, sol.Value)
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("want error for out-of-range variable")
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows create a redundant artificial row.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 8)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, 4) {
		t.Fatalf("got %v %v, want optimal 4 (x=4,y=0)", sol.Status, sol.Value)
	}
}

func TestZeroRows(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Value, 0) {
		t.Fatalf("got %v %v", sol.Status, sol.Value)
	}
}

// TestRandomVsEnumeration compares the simplex optimum against vertex
// enumeration on random 2-variable LPs (feasible region bounded in a box),
// exploiting that an LP optimum lies at a vertex of the polytope.
func TestRandomVsEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := rng.Intn(4) + 1
		type row struct{ a, b, c float64 }
		rows := make([]row, nc)
		for i := range rows {
			rows[i] = row{float64(rng.Intn(9) - 4), float64(rng.Intn(9) - 4), float64(rng.Intn(20))}
		}
		// Box 0 <= x,y <= 10 keeps it bounded.
		obj := [2]float64{float64(rng.Intn(9) - 4), float64(rng.Intn(9) - 4)}

		p := NewProblem(2)
		p.SetObjective(0, obj[0])
		p.SetObjective(1, obj[1])
		for _, r := range rows {
			p.AddConstraint([]Term{{0, r.a}, {1, r.b}}, LE, r.c)
		}
		p.AddConstraint([]Term{{0, 1}}, LE, 10)
		p.AddConstraint([]Term{{1, 1}}, LE, 10)
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Enumerate candidate vertices: intersections of all boundary
		// pairs (including axes and box walls).
		type line struct{ a, b, c float64 }
		var lines []line
		for _, r := range rows {
			lines = append(lines, line{r.a, r.b, r.c})
		}
		lines = append(lines,
			line{1, 0, 0}, line{0, 1, 0}, // axes as equalities x=0, y=0
			line{1, 0, 10}, line{0, 1, 10})
		feas := func(x, y float64) bool {
			if x < -1e-7 || y < -1e-7 || x > 10+1e-7 || y > 10+1e-7 {
				return false
			}
			for _, r := range rows {
				if r.a*x+r.b*y > r.c+1e-7 {
					return false
				}
			}
			return true
		}
		best := math.Inf(1)
		found := false
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				l1, l2 := lines[i], lines[j]
				det := l1.a*l2.b - l2.a*l1.b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (l1.c*l2.b - l2.c*l1.b) / det
				y := (l1.a*l2.c - l2.a*l1.c) / det
				if feas(x, y) {
					found = true
					v := obj[0]*x + obj[1]*y
					if v < best {
						best = v
					}
				}
			}
		}
		if !found {
			return sol.Status == Infeasible
		}
		return sol.Status == Optimal && math.Abs(sol.Value-best) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A transportation-style LP: 30 x 20 assignment with capacities.
	rng := rand.New(rand.NewSource(1))
	const cl, sv = 30, 20
	cost := make([][]float64, cl)
	for i := range cost {
		cost[i] = make([]float64, sv)
		for j := range cost[i] {
			cost[i][j] = float64(rng.Intn(10) + 1)
		}
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		p := NewProblem(cl * sv)
		for i := 0; i < cl; i++ {
			terms := make([]Term, sv)
			for j := 0; j < sv; j++ {
				p.SetObjective(i*sv+j, cost[i][j])
				terms[j] = Term{i*sv + j, 1}
			}
			p.AddConstraint(terms, EQ, 5)
		}
		for j := 0; j < sv; j++ {
			terms := make([]Term, cl)
			for i := 0; i < cl; i++ {
				terms[i] = Term{i*sv + j, 1}
			}
			p.AddConstraint(terms, LE, 10)
		}
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
