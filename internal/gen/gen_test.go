package gen

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestDefaults(t *testing.T) {
	in := Instance(Config{}, 1)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if in.Tree.NumInternal() != 10 || in.Tree.NumClients() != 10 {
		t.Errorf("sizes = %d/%d, want 10/10", in.Tree.NumInternal(), in.Tree.NumClients())
	}
	if !in.Homogeneous() {
		t.Error("default should be homogeneous")
	}
	if in.HasQoS() || in.HasBandwidth() {
		t.Error("default should be unconstrained")
	}
	// s_j = W_j by default (Replica Cost).
	for _, j := range in.Tree.Internal() {
		if in.S[j] != in.W[j] {
			t.Errorf("S[%d]=%d, W=%d", j, in.S[j], in.W[j])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Instance(Config{Internal: 8, Clients: 12, Heterogeneous: true}, 42)
	b := Instance(Config{Internal: 8, Clients: 12, Heterogeneous: true}, 42)
	if a.Tree.Len() != b.Tree.Len() {
		t.Fatal("non-deterministic size")
	}
	for v := 0; v < a.Tree.Len(); v++ {
		if a.R[v] != b.R[v] || a.W[v] != b.W[v] || a.Tree.Parent(v) != b.Tree.Parent(v) {
			t.Fatalf("non-deterministic at vertex %d", v)
		}
	}
	c := Instance(Config{Internal: 8, Clients: 12, Heterogeneous: true}, 43)
	same := true
	for v := 0; v < a.Tree.Len() && same; v++ {
		same = a.R[v] == c.R[v] && a.Tree.Parent(v) == c.Tree.Parent(v)
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestLambdaTargeting(t *testing.T) {
	for _, lambda := range []float64{0.1, 0.5, 0.9} {
		for _, het := range []bool{false, true} {
			in := Instance(Config{Internal: 30, Clients: 30, Lambda: lambda, Heterogeneous: het}, 7)
			got := in.Load()
			if math.Abs(got-lambda) > 0.15*lambda+0.05 {
				t.Errorf("lambda=%.1f het=%v: load=%.3f too far off", lambda, het, got)
			}
		}
	}
}

func TestHeterogeneousSpread(t *testing.T) {
	in := Instance(Config{Internal: 40, Clients: 40, Heterogeneous: true}, 3)
	if in.Homogeneous() {
		t.Error("heterogeneous instance has uniform capacities")
	}
	var min, max int64 = 1 << 60, 0
	for _, j := range in.Tree.Internal() {
		if in.W[j] < min {
			min = in.W[j]
		}
		if in.W[j] > max {
			max = in.W[j]
		}
	}
	if max < 2*min {
		t.Errorf("spread too small: min=%d max=%d", min, max)
	}
}

func TestUnitCosts(t *testing.T) {
	in := Instance(Config{UnitCosts: true}, 5)
	for _, j := range in.Tree.Internal() {
		if in.S[j] != 1 {
			t.Errorf("S[%d] = %d, want 1", j, in.S[j])
		}
	}
}

func TestQoSAndBandwidth(t *testing.T) {
	in := Instance(Config{QoSRange: 3, BWFactor: 0.8}, 11)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !in.HasQoS() || !in.HasBandwidth() {
		t.Fatal("constraints missing")
	}
	for _, c := range in.Tree.Clients() {
		if in.Q[c] < 1 || in.Q[c] > 3 {
			t.Errorf("Q[%d] = %d out of range", c, in.Q[c])
		}
	}
	for _, j := range in.Tree.Internal() {
		if in.Q[j] != core.NoQoS {
			t.Errorf("internal vertex %d has QoS", j)
		}
	}
}

func TestBatchAndSizeSweep(t *testing.T) {
	batch := Batch(Config{Internal: 5, Clients: 5}, 9, 4)
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	for _, in := range batch {
		if err := in.Validate(); err != nil {
			t.Errorf("batch instance invalid: %v", err)
		}
	}
	sweep := SizeSweep(Config{}, 13, 10, 15, 60)
	for _, in := range sweep {
		s := in.Tree.Len()
		if s < 15 || s > 61 {
			t.Errorf("size %d out of range", s)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("sweep instance invalid: %v", err)
		}
	}
}
