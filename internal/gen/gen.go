// Package gen produces seeded random problem instances for the Section 7
// experimental campaign: random tree shapes with clients at the leaves,
// request distributions, and capacities scaled so that the total load
// λ = Σ r_i / Σ W_j matches a target. All generation is deterministic
// given the seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/tree"
)

// Attachment selects how clients attach to the internal skeleton.
type Attachment int

const (
	// AttachBalanced deals clients over the non-root internal nodes with
	// weight (depth+1)² but round-robin striding, so per-subtree demand
	// stays even while clients concentrate at the fringe. This is the
	// default: even spread keeps instances feasible deep into the
	// high-load regime, and fringe placement keeps clients off the chain
	// tops that the top-down heuristics saturate first.
	AttachBalanced Attachment = iota
	// AttachDeep samples the attachment node with probability proportional
	// to (depth+1)², concentrating clients at the fringe.
	AttachDeep
	// AttachUniform samples uniformly over all internal nodes, including
	// the root.
	AttachUniform
)

// Config controls instance generation. Zero values select the defaults
// documented on each field.
type Config struct {
	// Internal is the number of internal vertices (candidate servers).
	// Default 10.
	Internal int
	// Clients is the number of clients. Default equal to Internal.
	Clients int
	// Attach selects the client attachment strategy (default
	// AttachBalanced).
	Attach Attachment
	// Lambda is the target load Σr/ΣW. Default 0.5.
	Lambda float64
	// Heterogeneous selects per-node random capacities (uniform within a
	// 1:4 spread) instead of one shared capacity.
	Heterogeneous bool
	// MinRequests/MaxRequests bound the per-client request counts.
	// Defaults 1 and 100.
	MinRequests, MaxRequests int64
	// UnitCosts sets s_j = 1 (Replica Counting) instead of s_j = W_j
	// (Replica Cost). The paper uses unit costs in the homogeneous
	// campaign and s_j = W_j in the heterogeneous one.
	UnitCosts bool
	// QoSRange, when positive, draws a hop-distance QoS bound per client
	// uniformly in [1, QoSRange]. Zero disables QoS.
	QoSRange int
	// BWFactor, when positive, sets every link bandwidth to
	// ceil(BWFactor × tflow(link)) — the fraction of the traffic that
	// would cross the link if everything were served at the root. Zero
	// disables bandwidth caps.
	BWFactor float64
}

func (c Config) withDefaults() Config {
	if c.Internal <= 0 {
		c.Internal = 10
	}
	if c.Clients <= 0 {
		c.Clients = c.Internal
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.5
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 1
	}
	if c.MaxRequests < c.MinRequests {
		c.MaxRequests = c.MinRequests + 99
	}
	return c
}

// Instance generates a random instance from the config and seed.
func Instance(cfg Config, seed int64) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	// Random tree shape. The skeleton attaches each new internal node to
	// an earlier node sampled with probability proportional to depth+1,
	// which yields deeper trees than the uniform recursive-tree model
	// (deep paths give every client several candidate servers, as in the
	// paper's distribution trees).
	b := tree.NewBuilder()
	internal := make([]int, 0, cfg.Internal)
	depth := make([]int, 0, cfg.Internal)
	internal = append(internal, b.AddRoot())
	depth = append(depth, 0)
	pickWeighted := func(weight func(i int) int) int {
		total := 0
		for i := range internal {
			total += weight(i)
		}
		x := rng.Intn(total)
		for i := range internal {
			x -= weight(i)
			if x < 0 {
				return i
			}
		}
		return len(internal) - 1
	}
	for k := 1; k < cfg.Internal; k++ {
		p := pickWeighted(func(i int) int { return depth[i] + 1 })
		internal = append(internal, b.AddNode(internal[p]))
		depth = append(depth, depth[p]+1)
	}
	clients := make([]int, 0, cfg.Clients)
	switch cfg.Attach {
	case AttachBalanced:
		// Deal order: each non-root node appears (depth+1)² times; the
		// shuffled deal is then sampled with a stride so the clients
		// spread evenly across it.
		var deal []int
		for i := range internal {
			if internal[i] == internal[0] && len(internal) > 1 {
				continue // keep clients off the root when possible
			}
			w := (depth[i] + 1) * (depth[i] + 1)
			for k := 0; k < w; k++ {
				deal = append(deal, internal[i])
			}
		}
		rng.Shuffle(len(deal), func(i, j int) { deal[i], deal[j] = deal[j], deal[i] })
		stride := len(deal) / cfg.Clients
		if stride < 1 {
			stride = 1
		}
		for k := 0; k < cfg.Clients; k++ {
			clients = append(clients, b.AddClient(deal[(k*stride)%len(deal)]))
		}
	case AttachDeep:
		for k := 0; k < cfg.Clients; k++ {
			p := pickWeighted(func(i int) int { return (depth[i] + 1) * (depth[i] + 1) })
			clients = append(clients, b.AddClient(internal[p]))
		}
	case AttachUniform:
		for k := 0; k < cfg.Clients; k++ {
			clients = append(clients, b.AddClient(internal[rng.Intn(len(internal))]))
		}
	default:
		panic(fmt.Sprintf("gen: unknown attachment strategy %d", cfg.Attach))
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("gen: internal error building tree: %v", err))
	}

	in := core.NewInstance(t)
	var totalR int64
	for _, c := range clients {
		r := cfg.MinRequests + rng.Int63n(cfg.MaxRequests-cfg.MinRequests+1)
		in.R[c] = r
		totalR += r
	}

	// Capacities: ΣW ≈ ΣR / λ.
	targetW := float64(totalR) / cfg.Lambda
	if cfg.Heterogeneous {
		// Draw weights in [1,4), normalize to the target sum.
		weights := make([]float64, cfg.Internal)
		var sum float64
		for i := range weights {
			weights[i] = 1 + 3*rng.Float64()
			sum += weights[i]
		}
		for i, j := range internal {
			w := int64(weights[i] / sum * targetW)
			if w < 1 {
				w = 1
			}
			in.W[j] = w
		}
	} else {
		w := int64(targetW / float64(cfg.Internal))
		if w < 1 {
			w = 1
		}
		for _, j := range internal {
			in.W[j] = w
		}
	}
	for _, j := range internal {
		if cfg.UnitCosts {
			in.S[j] = 1
		} else {
			in.S[j] = in.W[j]
		}
	}

	if cfg.QoSRange > 0 {
		in.Q = make([]int, t.Len())
		for i := range in.Q {
			in.Q[i] = core.NoQoS
		}
		for _, c := range clients {
			in.Q[c] = 1 + rng.Intn(cfg.QoSRange)
		}
	}
	if cfg.BWFactor > 0 {
		tf := in.TotalFlows()
		in.BW = make([]int64, t.Len())
		for v := 0; v < t.Len(); v++ {
			// Client access links stay uncapped: they must always carry
			// their own client's demand, so capping them below r_i would
			// make every instance trivially infeasible. Only internal
			// aggregation links are constrained.
			if v == t.Root() || t.IsClient(v) {
				in.BW[v] = core.NoBandwidth
				continue
			}
			in.BW[v] = int64(cfg.BWFactor*float64(tf[v])) + 1
		}
	}
	return in
}

// Batch generates n instances with consecutive derived seeds.
func Batch(cfg Config, seed int64, n int) []*core.Instance {
	out := make([]*core.Instance, n)
	for i := range out {
		out[i] = Instance(cfg, seed+int64(i)*7919)
	}
	return out
}

// SizeSweep generates instances whose problem size s = |C| + |N| is drawn
// uniformly in [minSize, maxSize] with two clients per internal node, as
// in the paper's experimental plan (15 ≤ s ≤ 400).
func SizeSweep(cfg Config, seed int64, n, minSize, maxSize int) []*core.Instance {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	out := make([]*core.Instance, n)
	for i := range out {
		s := minSize + rng.Intn(maxSize-minSize+1)
		c := cfg
		c.Internal = s / 3
		if c.Internal < 2 {
			c.Internal = 2
		}
		c.Clients = s - c.Internal
		out[i] = Instance(c, seed+int64(i)*104729)
	}
	return out
}
