package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options configures NewManager. The zero value selects an in-memory
// store, 2 job workers and a 256-deep submit queue.
type Options struct {
	// Store persists manifests and rows (default NewMemStore; use a
	// FileStore for jobs that survive restarts).
	Store Store
	// Workers is the number of jobs running concurrently. Campaign jobs
	// parallelize internally over trees, so this stays small (default 2).
	Workers int
	// QueueDepth bounds pending submissions before Submit returns
	// ErrQueueFull (default 256).
	QueueDepth int
	// RetainFor prunes finished (terminal) jobs — record and rows — once
	// their FinishedAt is older than this age. Zero keeps them until an
	// explicit Delete. Pruning runs at startup and periodically in the
	// background (see GCInterval).
	RetainFor time.Duration
	// GCInterval is the background pruning period when RetainFor is set
	// (default RetainFor/4, clamped to [1s, 1m]).
	GCInterval time.Duration
	// Logger receives job lifecycle transitions (default: discard). Log
	// lines carry the job's trace ID when the submitting request had one.
	Logger *slog.Logger
	// Spans, when set, records a span per job run (plus whatever the
	// kind's Run traces beneath it) into the process flight recorder,
	// under the submitting request's trace ID.
	Spans *obs.SpanStore
	// Events, when set, receives a job_failed entry in the cluster
	// event journal whenever a job reaches StateFailed.
	Events *obs.EventRing
}

func (o Options) withDefaults() Options {
	if o.Store == nil {
		o.Store = NewMemStore()
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.RetainFor > 0 && o.GCInterval <= 0 {
		o.GCInterval = o.RetainFor / 4
		if o.GCInterval < time.Second {
			o.GCInterval = time.Second
		}
		if o.GCInterval > time.Minute {
			o.GCInterval = time.Minute
		}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Stats is a snapshot of the manager's job-state gauges.
type Stats struct {
	Workers     int `json:"workers"`
	QueueLen    int `json:"queue_len"`
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Succeeded   int `json:"succeeded"`
	Failed      int `json:"failed"`
	Canceled    int `json:"canceled"`
	Interrupted int `json:"interrupted"`
	// Pruned counts finished jobs removed by age-based retention
	// (Options.RetainFor) over the manager's lifetime.
	Pruned uint64 `json:"pruned,omitempty"`
}

// Manager owns submitted jobs end to end: it schedules them on a
// bounded worker pool, checkpoints every completed row through its
// Store, cancels per job, and — over a persistent store — resumes
// unfinished jobs when a new Manager opens the same store. All methods
// are safe for concurrent use.
type Manager struct {
	store Store
	opts  Options
	kinds map[string]Kind
	queue chan string
	wg    sync.WaitGroup
	log   *slog.Logger
	// durations observes terminal jobs' wall time (StartedAt→FinishedAt),
	// exposed on /metrics as rp_jobs_duration_seconds.
	durations *obs.Histogram

	mu      sync.Mutex
	metas   map[string]Meta
	cancels map[string]context.CancelCauseFunc
	// finalize holds, per job whose terminal state is published in metas
	// but whose final manifest write is still in flight, a channel closed
	// when that write lands. Delete waits on it so a concurrent DELETE
	// cannot race the write and leave an orphaned manifest/row-log pair
	// behind (the write would silently resurrect the directory).
	finalize  map[string]chan struct{}
	running   int
	closed    bool
	recovered int
	pruned    uint64
	gcStop    chan struct{}
}

// NewManager opens a manager over the store: it registers the kinds,
// re-queues every unfinished job found in the store (queued, running or
// interrupted — i.e. jobs from a previous process that never reached a
// terminal state), and starts the worker pool.
func NewManager(opts Options, kinds ...Kind) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		store:     opts.Store,
		opts:      opts,
		kinds:     map[string]Kind{},
		metas:     map[string]Meta{},
		cancels:   map[string]context.CancelCauseFunc{},
		finalize:  map[string]chan struct{}{},
		gcStop:    make(chan struct{}),
		log:       opts.Logger,
		durations: obs.NewHistogram(nil),
	}
	for _, k := range kinds {
		if k.Name == "" || k.Prepare == nil || k.Run == nil {
			return nil, fmt.Errorf("jobs: kind %q is incomplete", k.Name)
		}
		if _, dup := m.kinds[k.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate kind %q", k.Name)
		}
		m.kinds[k.Name] = k
	}

	stored, err := m.store.List()
	if err != nil {
		return nil, fmt.Errorf("jobs: loading store: %w", err)
	}
	var resume []Meta
	for _, meta := range stored {
		if !meta.State.Terminal() {
			resume = append(resume, meta)
		}
		m.metas[meta.ID] = meta
	}
	sort.Slice(resume, func(i, j int) bool { return resume[i].CreatedAt.Before(resume[j].CreatedAt) })

	// The queue must hold every recovered job up front (workers have not
	// started yet), plus the configured headroom for new submissions.
	m.queue = make(chan string, opts.QueueDepth+len(resume))
	for _, meta := range resume {
		if _, ok := m.kinds[meta.Spec.Kind]; !ok {
			meta.State = StateFailed
			meta.Error = fmt.Sprintf("jobs: unknown job kind %q", meta.Spec.Kind)
			meta.FinishedAt = time.Now().UTC()
			m.metas[meta.ID] = meta
			m.store.Put(meta)
			continue
		}
		meta.State = StateQueued
		m.metas[meta.ID] = meta
		if err := m.store.Put(meta); err != nil {
			return nil, err
		}
		m.queue <- meta.ID
		m.recovered++
	}

	if opts.RetainFor > 0 {
		m.PruneNow() // stale finished jobs from earlier runs go at startup
		m.wg.Add(1)
		go m.gcLoop()
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// gcLoop prunes expired finished jobs every GCInterval until Close.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.PruneNow()
		case <-m.gcStop:
			return
		}
	}
}

// PruneNow deletes every terminal job whose FinishedAt is older than
// Options.RetainFor, returning how many were removed. It is a no-op
// without a retention limit. The background GC calls it periodically;
// it is exported for tests and operational tooling.
func (m *Manager) PruneNow() int {
	if m.opts.RetainFor <= 0 {
		return 0
	}
	cutoff := time.Now().UTC().Add(-m.opts.RetainFor)
	m.mu.Lock()
	var expired []string
	for id, meta := range m.metas {
		if meta.State.Terminal() && !meta.FinishedAt.IsZero() && meta.FinishedAt.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	m.mu.Unlock()
	pruned := 0
	for _, id := range expired {
		// Delete re-checks state under the lock and waits out any
		// in-flight finalization, so racing a fresh lookup is safe.
		if err := m.Delete(id); err == nil {
			pruned++
		}
	}
	if pruned > 0 {
		m.mu.Lock()
		m.pruned += uint64(pruned)
		m.mu.Unlock()
	}
	return pruned
}

// Recovered reports how many unfinished jobs this manager re-queued
// from its store at startup.
func (m *Manager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// Submit validates the spec against its kind, persists the job and
// queues it. The returned Meta is the job's initial (queued) record.
// The trace ID carried by ctx (the submitting HTTP request's) is
// recorded on the manifest and re-attached to the job's run context, so
// log lines and downstream shard calls made on the job's behalf carry
// the same ID as the request that created it.
func (m *Manager) Submit(ctx context.Context, spec Spec) (Meta, error) {
	kind, ok := m.kinds[spec.Kind]
	if !ok {
		return Meta{}, fmt.Errorf("jobs: unknown job kind %q", spec.Kind)
	}
	payload, total, err := kind.Prepare(spec.Payload)
	if err != nil {
		return Meta{}, err
	}
	meta := Meta{
		ID:        newID(),
		Spec:      Spec{Kind: spec.Kind, Payload: payload},
		State:     StateQueued,
		RowsTotal: total,
		TraceID:   obs.Trace(ctx),
		CreatedAt: time.Now().UTC(),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Meta{}, ErrClosed
	}
	if len(m.queue) == cap(m.queue) {
		m.mu.Unlock()
		return Meta{}, ErrQueueFull
	}
	if err := m.store.Put(meta); err != nil {
		m.mu.Unlock()
		return Meta{}, err
	}
	m.metas[meta.ID] = meta
	m.queue <- meta.ID // cannot block: space checked under mu, only Submit sends
	m.mu.Unlock()

	m.event(meta, EventQueued, fmt.Sprintf("kind %s, %d rows", meta.Spec.Kind, meta.RowsTotal))
	m.log.InfoContext(ctx, "job queued",
		"job", meta.ID, "kind", meta.Spec.Kind, "rows_total", meta.RowsTotal)
	return meta, nil
}

// event appends one timeline entry for the job, stamping the time and
// the job's trace. Failures are deliberately dropped: the timeline is
// advisory and must never fail a row or a state transition.
func (m *Manager) event(meta Meta, typ, detail string) {
	m.store.AppendEvent(meta.ID, Event{
		Time:    time.Now().UTC(),
		Type:    typ,
		Detail:  detail,
		TraceID: meta.TraceID,
	})
}

// Get returns a job's current record.
func (m *Manager) Get(id string) (Meta, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, ok := m.metas[id]
	return meta, ok
}

// List returns every job, oldest first.
func (m *Manager) List() []Meta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Meta, 0, len(m.metas))
	for _, meta := range m.metas {
		out = append(out, meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Rows returns the job's persisted rows in append order.
func (m *Manager) Rows(id string) ([]json.RawMessage, error) {
	if _, ok := m.Get(id); !ok {
		return nil, ErrNotFound
	}
	return m.store.Rows(id)
}

// Events returns the job's timeline in append order.
func (m *Manager) Events(id string) ([]Event, error) {
	if _, ok := m.Get(id); !ok {
		return nil, ErrNotFound
	}
	return m.store.Events(id)
}

// Durations snapshots the job wall-time histogram (terminal jobs'
// StartedAt→FinishedAt, seconds).
func (m *Manager) Durations() obs.HistogramSnapshot {
	return m.durations.Snapshot()
}

// Cancel stops a job. A queued job is marked canceled immediately; a
// running job's context is canceled and the record transitions to
// canceled when its runner unwinds (poll Get to observe it). Jobs
// already in a terminal state return an error.
func (m *Manager) Cancel(id string) (Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, ok := m.metas[id]
	if !ok {
		return Meta{}, ErrNotFound
	}
	return m.cancelLocked(id, meta)
}

// cancelLocked is the live-job arm of Cancel and CancelOrDelete; the
// caller holds m.mu. Terminal states return the "already finished"
// error — CancelOrDelete handles them before calling here.
func (m *Manager) cancelLocked(id string, meta Meta) (Meta, error) {
	switch meta.State {
	case StateQueued, StateInterrupted:
		meta.State = StateCanceled
		meta.FinishedAt = time.Now().UTC()
		m.metas[id] = meta
		return meta, m.store.Put(meta)
	case StateRunning:
		if cancel := m.cancels[id]; cancel != nil {
			cancel(ErrCanceled)
		}
		return meta, nil
	default:
		return meta, fmt.Errorf("jobs: job %s already %s", id, meta.State)
	}
}

// Delete removes a terminal job's record and rows. Cancel running or
// queued jobs first (ErrNotTerminal otherwise). A Delete that races the
// job's completion waits for the final manifest write before removing
// the directory, so the store never keeps an orphaned manifest/row-log
// pair for a job the manager has forgotten.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	for {
		meta, ok := m.metas[id]
		if !ok {
			m.mu.Unlock()
			return ErrNotFound
		}
		if !meta.State.Terminal() {
			m.mu.Unlock()
			return ErrNotTerminal
		}
		ch := m.finalize[id]
		if ch == nil {
			break
		}
		// The runner published the terminal state but its final store.Put
		// is still in flight; deleting now would lose the race and leave
		// the manifest it is about to write. Wait it out and re-check.
		m.mu.Unlock()
		<-ch
		m.mu.Lock()
	}
	delete(m.metas, id)
	m.mu.Unlock()
	return m.store.Delete(id)
}

// CancelOrDelete is the DELETE-endpoint semantic as one atomic decision:
// a terminal job is deleted, a live one is canceled (deleted=false; the
// record stays and reaches the canceled state). Unlike calling Get then
// Cancel, a job that finishes concurrently is handled coherently — the
// completion is observed under the lock and the job is deleted instead
// of failing with an "already finished" error.
func (m *Manager) CancelOrDelete(id string) (meta Meta, deleted bool, err error) {
	m.mu.Lock()
	meta, ok := m.metas[id]
	if !ok {
		m.mu.Unlock()
		return Meta{}, false, ErrNotFound
	}
	if meta.State.Terminal() { // possibly having just beaten us to it
		m.mu.Unlock()
		if err := m.Delete(id); err != nil {
			return meta, false, err
		}
		return meta, true, nil
	}
	meta, err = m.cancelLocked(id, meta)
	m.mu.Unlock()
	return meta, false, err
}

// Stats snapshots the job-state gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Workers: m.opts.Workers, QueueLen: len(m.queue), Running: m.running, Pruned: m.pruned}
	for _, meta := range m.metas {
		switch meta.State {
		case StateQueued:
			st.Queued++
		case StateSucceeded:
			st.Succeeded++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		case StateInterrupted:
			st.Interrupted++
		}
	}
	return st
}

// Close checkpoints and stops the manager: running jobs are canceled
// with ErrShutdown (their completed rows are already persisted, and
// they finalize as interrupted), still-queued jobs stay queued in the
// store, and new submissions fail with ErrClosed. Close returns when
// the workers have stopped or ctx expires (they then finish in the
// background).
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	close(m.gcStop)
	for _, cancel := range m.cancels {
		cancel(ErrShutdown)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for id := range m.queue {
		m.runJob(id)
	}
}

// runJob executes one queued job to a final (or interrupted) state.
// The claim — cancel registration AND the transition to running —
// happens in one critical section, so a concurrent Cancel either sees
// the job still queued (and marks it canceled before the claim, which
// the claim then observes) or sees it running (and fires the registered
// cancel func); there is no window where a canceled job is resurrected.
// While the job runs, this worker is the only writer of its manifest
// (Cancel on a running job only cancels the context, Delete refuses
// non-terminal jobs), so store writes happen outside m.mu and never
// block status polls.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	if m.closed {
		// Drained after Close: leave the job queued in the store so the
		// next manager over it resumes the job.
		m.mu.Unlock()
		return
	}
	meta, ok := m.metas[id]
	if !ok || meta.State != StateQueued {
		m.mu.Unlock()
		return // canceled (or deleted) while waiting for a worker
	}
	kind := m.kinds[meta.Spec.Kind]
	ctx, cancel := context.WithCancelCause(context.Background())
	m.cancels[id] = cancel
	m.running++
	meta.State = StateRunning
	if meta.StartedAt.IsZero() {
		meta.StartedAt = time.Now().UTC()
	}
	m.metas[id] = meta
	m.mu.Unlock()
	defer cancel(nil)

	// Re-carry the submitting request's trace and install the event
	// recorder, so a kind's Run (and anything it calls — shard requests,
	// engine solves) logs and propagates under the job's trace ID.
	ctx = obs.WithTrace(ctx, meta.TraceID)
	ctx = withEventSink(ctx, func(typ, detail string) { m.event(meta, typ, detail) })
	ctx = obs.WithSpans(ctx, m.opts.Spans)
	ctx, span := obs.StartSpan(ctx, "job.run")
	span.SetAttr("job", id)
	span.SetAttr("kind", meta.Spec.Kind)

	m.event(meta, EventStarted, fmt.Sprintf("resumes=%d", meta.Resumes))
	m.log.InfoContext(ctx, "job started", "job", id, "kind", meta.Spec.Kind)

	prior, err := m.store.Rows(id)
	if err == nil {
		m.mu.Lock()
		meta = m.metas[id]
		if len(prior) > 0 {
			meta.Resumes++
		}
		// The row log is authoritative; a manifest that lagged a crash
		// (counter written before the row, or vice versa) reconciles here.
		meta.RowsDone = len(prior)
		m.metas[id] = meta
		m.mu.Unlock()
		m.store.Put(meta)

		err = kind.Run(ctx, meta.Spec.Payload, prior, func(row json.RawMessage) error {
			if aerr := m.store.AppendRow(id, row); aerr != nil {
				return aerr
			}
			m.mu.Lock()
			mm := m.metas[id]
			mm.RowsDone++
			m.metas[id] = mm
			m.mu.Unlock()
			if perr := m.store.Put(mm); perr != nil {
				return perr
			}
			m.event(mm, EventCheckpoint, fmt.Sprintf("row %d/%d", mm.RowsDone, mm.RowsTotal))
			return nil
		})
	}

	state := StateSucceeded
	cause := context.Cause(ctx)
	switch {
	case err == nil:
	case errors.Is(cause, ErrShutdown):
		state = StateInterrupted
	case errors.Is(cause, ErrCanceled),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		state = StateCanceled
	default:
		state = StateFailed
	}
	span.SetAttr("state", string(state))
	if state == StateFailed {
		span.SetError(err)
	}
	span.End()

	m.mu.Lock()
	mm := m.metas[id]
	mm.State = state
	if state == StateFailed {
		mm.Error = err.Error()
	}
	if state.Terminal() {
		mm.FinishedAt = time.Now().UTC()
	}
	delete(m.cancels, id)
	m.running--
	m.metas[id] = mm
	// Publish the terminal state and the pending final write atomically:
	// a Delete that sees the new state also sees the finalize channel and
	// waits for the Put below instead of racing it.
	fin := make(chan struct{})
	m.finalize[id] = fin
	m.mu.Unlock()

	m.store.Put(mm)

	m.mu.Lock()
	delete(m.finalize, id)
	m.mu.Unlock()
	close(fin)

	m.event(mm, EventFinished, string(state))
	if state.Terminal() && !mm.StartedAt.IsZero() {
		m.durations.Observe(mm.FinishedAt.Sub(mm.StartedAt))
	}
	switch state {
	case StateFailed:
		m.log.ErrorContext(ctx, "job failed", "job", id, "kind", mm.Spec.Kind, "error", mm.Error)
		m.opts.Events.Emit(ctx, "job_failed", "job reached a failed terminal state",
			"job", id, "kind", mm.Spec.Kind, "error", mm.Error)
	default:
		m.log.InfoContext(ctx, "job finished",
			"job", id, "kind", mm.Spec.Kind, "state", string(state), "rows_done", mm.RowsDone)
	}
}

// newID returns a fresh, filesystem-safe job id.
func newID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}
