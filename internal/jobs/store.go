package jobs

import (
	"encoding/json"
	"sort"
	"sync"
)

// Store persists job manifests and append-only row logs. Implementations
// must be safe for concurrent use. The manager serializes writes per
// job (one worker owns a running job), but reads — status polls, row
// fetches — happen concurrently with them.
type Store interface {
	// Put creates or replaces a job's manifest.
	Put(m Meta) error
	// Get returns a job's manifest; ok is false when the id is unknown.
	Get(id string) (m Meta, ok bool, err error)
	// List returns every manifest, in no particular order.
	List() ([]Meta, error)
	// AppendRow appends one row to the job's log.
	AppendRow(id string, row json.RawMessage) error
	// Rows returns the job's row log in append order (nil when empty).
	Rows(id string) ([]json.RawMessage, error)
	// AppendEvent appends one timeline event to the job's event log.
	// Events are advisory (operator-facing observability, never read by
	// resume logic), so implementations may trade durability for cost.
	AppendEvent(id string, ev Event) error
	// Events returns the job's event log in append order (nil when
	// empty).
	Events(id string) ([]Event, error)
	// Delete removes the job's manifest, rows, and events.
	Delete(id string) error
}

// MemStore is the in-process Store: jobs do not survive a restart.
type MemStore struct {
	mu     sync.RWMutex
	metas  map[string]Meta
	rows   map[string][]json.RawMessage
	events map[string][]Event
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		metas:  map[string]Meta{},
		rows:   map[string][]json.RawMessage{},
		events: map[string][]Event{},
	}
}

// Put implements Store.
func (s *MemStore) Put(m Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metas[m.ID] = m
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id string) (Meta, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.metas[id]
	return m, ok, nil
}

// List implements Store.
func (s *MemStore) List() ([]Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Meta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AppendRow implements Store.
func (s *MemStore) AppendRow(id string, row json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows[id] = append(s.rows[id], append(json.RawMessage(nil), row...))
	return nil
}

// Rows implements Store.
func (s *MemStore) Rows(id string) ([]json.RawMessage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rows := s.rows[id]
	out := make([]json.RawMessage, len(rows))
	copy(out, rows)
	return out, nil
}

// AppendEvent implements Store.
func (s *MemStore) AppendEvent(id string, ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events[id] = append(s.events[id], ev)
	return nil
}

// Events implements Store.
func (s *MemStore) Events(id string) ([]Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.events[id]
	out := make([]Event, len(evs))
	copy(out, evs)
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.metas, id)
	delete(s.rows, id)
	delete(s.events, id)
	return nil
}
