package jobs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestJobEventsLifecycle: a job's timeline is recorded queued → started
// → checkpointed... → finished, every event stamped with the submitting
// request's trace ID, and the terminal job feeds the duration histogram.
func TestJobEventsLifecycle(t *testing.T) {
	m, err := NewManager(Options{Workers: 1}, countKind("count", 3))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	ctx := obs.WithTrace(t.Context(), "trace-events-1")
	meta, err := m.Submit(ctx, Spec{Kind: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.TraceID != "trace-events-1" {
		t.Fatalf("manifest trace = %q, want trace-events-1", meta.TraceID)
	}
	waitState(t, m.Get, meta.ID, StateSucceeded)

	events, err := m.Events(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, ev := range events {
		types = append(types, ev.Type)
		if ev.TraceID != "trace-events-1" {
			t.Errorf("event %s trace = %q, want trace-events-1", ev.Type, ev.TraceID)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %s without a timestamp", ev.Type)
		}
	}
	want := []string{EventQueued, EventStarted, EventCheckpoint, EventCheckpoint, EventCheckpoint, EventFinished}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}
	if last := events[len(events)-1]; last.Detail != string(StateSucceeded) {
		t.Errorf("finished detail = %q, want %q", last.Detail, StateSucceeded)
	}

	if d := m.Durations(); d.Count != 1 {
		t.Errorf("duration histogram count = %d, want 1", d.Count)
	}
}

// TestJobEventsUntracedSubmit: no trace on the submitting context means
// no trace_id on the manifest or the timeline — not a generated one.
func TestJobEventsUntracedSubmit(t *testing.T) {
	m, err := NewManager(Options{Workers: 1}, countKind("count", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	meta, err := m.Submit(t.Context(), Spec{Kind: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.TraceID != "" {
		t.Fatalf("manifest trace = %q, want empty", meta.TraceID)
	}
	waitState(t, m.Get, meta.ID, StateSucceeded)
	events, err := m.Events(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.TraceID != "" {
			t.Errorf("event %s trace = %q, want empty", ev.Type, ev.TraceID)
		}
	}
}

// TestFileStoreEvents: the timeline round-trips through the file store,
// survives restarts, drops a torn trailing line, and dies with Delete.
func TestFileStoreEvents(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Meta{ID: "j1", State: StateRunning, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	at := time.Now().UTC().Truncate(time.Second)
	for _, ev := range []Event{
		{Time: at, Type: EventQueued, TraceID: "tr1"},
		{Time: at.Add(time.Second), Type: EventStarted, Detail: "resumes=0", TraceID: "tr1"},
	} {
		if err := s.AppendEvent("j1", ev); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a trailing partial line.
	f, err := os.OpenFile(filepath.Join(dir, "j1", eventsName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"fini`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A fresh store over the same dir (a restart) reads the same timeline.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	events, err := s2.Events("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v, want 2", events)
	}
	if events[0].Type != EventQueued || events[1].Type != EventStarted {
		t.Fatalf("event order = %s, %s", events[0].Type, events[1].Type)
	}
	if events[1].Detail != "resumes=0" || events[1].TraceID != "tr1" {
		t.Fatalf("event payload = %+v", events[1])
	}
	if !events[0].Time.Equal(at) {
		t.Fatalf("event time = %v, want %v", events[0].Time, at)
	}

	if err := s2.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	if evs, _ := s2.Events("j1"); len(evs) != 0 {
		t.Fatalf("events survived delete: %+v", evs)
	}
}

// TestMemStoreEvents: the in-memory store mirrors the file semantics.
func TestMemStoreEvents(t *testing.T) {
	s := NewMemStore()
	if err := s.Put(Meta{ID: "j1", State: StateQueued, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent("j1", Event{Time: time.Now(), Type: EventQueued}); err != nil {
		t.Fatal(err)
	}
	events, err := s.Events("j1")
	if err != nil || len(events) != 1 || events[0].Type != EventQueued {
		t.Fatalf("events = %+v, err %v", events, err)
	}
	// The returned slice is a copy: mutating it must not corrupt the store.
	events[0].Type = "mutated"
	again, _ := s.Events("j1")
	if again[0].Type != EventQueued {
		t.Fatal("Events returned an aliased slice")
	}
	if err := s.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	if evs, _ := s.Events("j1"); len(evs) != 0 {
		t.Fatalf("events survived delete: %+v", evs)
	}
}

// PostEvent without a sink in the context is a silent no-op — cluster
// kinds call it unconditionally.
func TestPostEventWithoutSink(t *testing.T) {
	PostEvent(t.Context(), EventDispatch, "nowhere")
}
