package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
)

// CampaignKindName is the Spec.Kind of Section 7 experiment campaigns.
const CampaignKindName = "campaign"

// CampaignKind executes experiments.Config payloads: one persisted row
// per λ value, in λ order. Because rows complete in order and every
// tree is generated from a seed tied to its absolute λ index, the
// checkpoint is simply the row count — a resumed campaign sets
// Config.StartRow to len(prior) and recomputes nothing.
func CampaignKind() Kind {
	return Kind{
		Name: CampaignKindName,
		Prepare: func(payload json.RawMessage) (json.RawMessage, int, error) {
			cfg, err := decodeCampaign(payload)
			if err != nil {
				return nil, 0, err
			}
			// Persist the normalized config: defaults (λ sweep, sizes,
			// seed) are pinned at submit time, so a resume after a restart
			// — possibly under a binary with different defaults — still
			// derives the identical sweep.
			cfg = cfg.Normalized()
			if cfg.StartRow != 0 {
				return nil, 0, fmt.Errorf("jobs: campaign jobs manage StartRow themselves; submit without it")
			}
			norm, err := json.Marshal(cfg)
			if err != nil {
				return nil, 0, err
			}
			return norm, len(cfg.Lambdas), nil
		},
		Run: func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			cfg, err := decodeCampaign(payload)
			if err != nil {
				return err
			}
			cfg.StartRow = len(prior)
			if cfg.StartRow >= len(cfg.Lambdas) {
				return nil // every row already checkpointed
			}
			cfg.Context = ctx
			cfg.Progress = func(row experiments.Row) error {
				data, err := json.Marshal(row)
				if err != nil {
					return err
				}
				return sink(data)
			}
			_, err = experiments.Run(cfg)
			return err
		},
	}
}

func decodeCampaign(payload json.RawMessage) (experiments.Config, error) {
	var cfg experiments.Config
	if len(payload) == 0 {
		return cfg, fmt.Errorf("jobs: campaign job without config")
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("jobs: bad campaign config: %w", err)
	}
	return cfg, nil
}

// CampaignRows decodes a campaign job's persisted rows.
func CampaignRows(rows []json.RawMessage) ([]experiments.Row, error) {
	out := make([]experiments.Row, 0, len(rows))
	for i, raw := range rows {
		var row experiments.Row
		if err := json.Unmarshal(raw, &row); err != nil {
			return nil, fmt.Errorf("jobs: corrupt campaign row %d: %w", i, err)
		}
		out = append(out, row)
	}
	return out, nil
}
