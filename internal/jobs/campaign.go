package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
)

// CampaignKindName is the Spec.Kind of Section 7 experiment campaigns.
const CampaignKindName = "campaign"

// CampaignKind executes experiments.Config payloads: one persisted row
// per λ value, in λ order. Because rows complete in order and every
// tree is generated from a seed tied to its absolute λ index, the
// checkpoint is simply the row count — a resumed campaign sets
// Config.StartRow to len(prior) and recomputes nothing.
func CampaignKind() Kind {
	return Kind{
		Name: CampaignKindName,
		Prepare: func(payload json.RawMessage) (json.RawMessage, int, error) {
			cfg, err := decodeCampaign(payload)
			if err != nil {
				return nil, 0, err
			}
			// Persist the normalized config: defaults (λ sweep, sizes,
			// seed) are pinned at submit time, so a resume after a restart
			// — possibly under a binary with different defaults — still
			// derives the identical sweep.
			cfg = cfg.Normalized()
			if cfg.StartRow != 0 || cfg.EndRow != 0 {
				return nil, 0, fmt.Errorf("jobs: campaign jobs manage StartRow/EndRow themselves; submit without them")
			}
			norm, err := json.Marshal(cfg)
			if err != nil {
				return nil, 0, err
			}
			return norm, len(cfg.Lambdas), nil
		},
		Run: func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			cfg, err := decodeCampaign(payload)
			if err != nil {
				return err
			}
			// Rows written by a cluster coordinator carry an explicit
			// "index" and land in shard-completion order, so position is
			// NOT the λ index there. Detect that format and resume by
			// missing index — a jobs dir can migrate between a standalone
			// daemon and a coordinator in either direction without
			// duplicating or skipping rows.
			indexed := false
			done := make([]bool, len(cfg.Lambdas))
			for i, raw := range prior {
				idx, explicit, err := CampaignRowIndex(raw, i)
				if err != nil {
					return err
				}
				if explicit {
					indexed = true
				}
				if idx >= 0 && idx < len(done) {
					done[idx] = true
				}
			}
			if indexed {
				for idx := range done {
					if done[idx] {
						continue
					}
					if err := ctx.Err(); err != nil {
						return err
					}
					c := cfg
					c.StartRow, c.EndRow = idx, idx+1
					c.Context = ctx
					res, err := experiments.Run(c)
					if err != nil {
						return err
					}
					if len(res.Rows) != 1 {
						return fmt.Errorf("jobs: campaign slice [%d,%d) produced %d rows", idx, idx+1, len(res.Rows))
					}
					data, err := json.Marshal(IndexedCampaignRow{Index: idx, Row: res.Rows[0]})
					if err != nil {
						return err
					}
					if err := sink(data); err != nil {
						return err
					}
				}
				return nil
			}
			cfg.StartRow = len(prior)
			if cfg.StartRow >= len(cfg.Lambdas) {
				return nil // every row already checkpointed
			}
			cfg.Context = ctx
			cfg.Progress = func(row experiments.Row) error {
				data, err := json.Marshal(row)
				if err != nil {
					return err
				}
				return sink(data)
			}
			_, err = experiments.Run(cfg)
			return err
		},
	}
}

// IndexedCampaignRow is the persisted form of one sharded campaign row:
// the plain experiments.Row plus the absolute λ index that keys the
// checkpoint. The embedding keeps the wire shape a superset of the
// position-keyed row, so CampaignRows (and the CSV result endpoint)
// decode both interchangeably.
type IndexedCampaignRow struct {
	Index int `json:"index"`
	experiments.Row
}

// CampaignRowIndex extracts the absolute λ index of a persisted
// campaign row. Position-keyed rows (a standalone daemon's, written in
// λ order) carry no index field — their position IS the index; explicit
// reports whether the row carried one.
func CampaignRowIndex(raw json.RawMessage, position int) (idx int, explicit bool, err error) {
	var probe struct {
		Index *int `json:"index"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return 0, false, fmt.Errorf("jobs: corrupt checkpointed campaign row %d: %w", position, err)
	}
	if probe.Index == nil {
		return position, false, nil
	}
	return *probe.Index, true, nil
}

func decodeCampaign(payload json.RawMessage) (experiments.Config, error) {
	var cfg experiments.Config
	if len(payload) == 0 {
		return cfg, fmt.Errorf("jobs: campaign job without config")
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("jobs: bad campaign config: %w", err)
	}
	return cfg, nil
}

// CampaignRows decodes a campaign job's persisted rows.
func CampaignRows(rows []json.RawMessage) ([]experiments.Row, error) {
	out := make([]experiments.Row, 0, len(rows))
	for i, raw := range rows {
		var row experiments.Row
		if err := json.Unmarshal(raw, &row); err != nil {
			return nil, fmt.Errorf("jobs: corrupt campaign row %d: %w", i, err)
		}
		out = append(out, row)
	}
	return out, nil
}
