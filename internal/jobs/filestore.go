package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// FileStore persists jobs under one directory per job (see the package
// doc for the layout): a manifest replaced atomically on every state
// change, plus an append-only NDJSON row log. Jobs stored here survive
// a daemon restart and resume from their last committed row.
type FileStore struct {
	dir string
	mu  sync.Mutex // serializes multi-step filesystem operations
}

const (
	manifestName = "manifest.json"
	rowsName     = "rows.ndjson"
	eventsName   = "events.ndjson"
)

// NewFileStore opens (creating if needed) a file store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, errors.New("jobs: file store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// jobDir validates the id (it becomes a path component) and returns the
// job's directory. IDs are manager-generated, but Get/Delete also see
// caller-supplied ids from the HTTP layer, so traversal must be
// impossible here, not just unlikely.
func (s *FileStore) jobDir(id string) (string, error) {
	if id == "" {
		return "", errors.New("jobs: empty job id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return "", fmt.Errorf("jobs: invalid job id %q", id)
		}
	}
	return filepath.Join(s.dir, id), nil
}

// Put implements Store: the manifest is written to a temp file and
// renamed over the old one, so a crash never leaves a torn manifest.
func (s *FileStore) Put(m Meta) error {
	dir, err := s.jobDir(m.ID)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestName))
}

// Get implements Store.
func (s *FileStore) Get(id string) (Meta, bool, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return Meta{}, false, err
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, false, fmt.Errorf("jobs: corrupt manifest for %s: %w", id, err)
	}
	return m, true, nil
}

// List implements Store. Directories without a readable manifest (e.g.
// a job created but crashed before its first Put completed the rename)
// are skipped, not errors.
func (s *FileStore) List() ([]Meta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []Meta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, ok, err := s.Get(e.Name())
		if err != nil || !ok {
			continue
		}
		out = append(out, m)
	}
	return out, nil
}

// AppendRow implements Store: one JSON line appended with O_APPEND, so
// committed rows are never rewritten.
func (s *FileStore) AppendRow(id string, row json.RawMessage) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	if !json.Valid(row) {
		return fmt.Errorf("jobs: row for %s is not valid JSON", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(dir, rowsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(append([]byte(nil), row...), '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// Rows implements Store. A trailing partial line (a crash mid-append)
// is dropped; everything before it is intact because rows are
// append-only.
func (s *FileStore) Rows(id string) ([]json.RawMessage, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, rowsName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []json.RawMessage
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			break // torn trailing write; ignore it and everything after
		}
		out = append(out, append(json.RawMessage(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendEvent implements Store. Unlike rows, events are appended
// without fsync: they are advisory observability data, never read back
// by resume logic, and a per-row fsync here would double the row path's
// disk cost for no correctness gain.
func (s *FileStore) AppendEvent(id string, ev Event) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(dir, eventsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}

// Events implements Store. Like Rows, a torn trailing line (crash
// mid-append) is dropped silently.
func (s *FileStore) Events(id string) ([]Event, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, eventsName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			break // torn trailing write; ignore it and everything after
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete implements Store.
func (s *FileStore) Delete(id string) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.RemoveAll(dir)
}
