// Package jobs is the async campaign-job subsystem behind the service
// layer's /v1/jobs API: submitted campaign (and large batch-solve) runs
// are owned end to end by a Manager — scheduled on a bounded worker
// pool, cancellable per job, checkpointed row by row, and resumable
// after a daemon restart.
//
// A job is a Spec (a kind name plus an opaque JSON payload) executed by
// a registered Kind. The Kind's Prepare hook normalizes the payload at
// submit time and fixes the total row count; its Run hook executes (or
// resumes) the job, emitting each completed row through a sink. Rows
// are the checkpoint: on restart, a resumed job is handed its prior
// rows and continues from there — a campaign restarts from the first
// λ value without a persisted row, never recomputing completed ones.
//
// # Stores
//
// The Store interface persists job manifests and row logs. MemStore
// keeps everything in process memory (jobs die with the daemon).
// FileStore survives restarts; its on-disk layout under the configured
// jobs dir is one directory per job:
//
//	<jobs-dir>/
//	  <job-id>/
//	    manifest.json   # Meta: spec, state, row counts, timestamps
//	    rows.ndjson     # append-only log, one JSON row per line
//
// The manifest is replaced atomically (temp file + rename) on every
// state change; rows.ndjson is append-only, so a crash can lose at most
// the trailing partial line (tolerated on load) and never a committed
// row. The rows file is the source of truth for resume: a job restarts
// from len(rows), even if the manifest's counters lag behind.
//
// # Lifecycle
//
// queued → running → succeeded | failed | canceled, with interrupted as
// the checkpointed-at-shutdown state: Manager.Close cancels running
// jobs with ErrShutdown, marking them interrupted; a new Manager over
// the same store re-queues queued/running/interrupted jobs and resumes
// them from their persisted rows.
package jobs
