package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"time"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued marks a submitted (or restart-recovered) job waiting
	// for a worker slot.
	StateQueued State = "queued"
	// StateRunning marks a job currently executing on a worker.
	StateRunning State = "running"
	// StateSucceeded marks a job that ran to completion; all its rows
	// are persisted.
	StateSucceeded State = "succeeded"
	// StateFailed marks a job whose runner returned an error other than
	// cancellation; Meta.Error holds it.
	StateFailed State = "failed"
	// StateCanceled marks a job canceled by the caller.
	StateCanceled State = "canceled"
	// StateInterrupted marks a job checkpointed by Manager.Close: its
	// completed rows are persisted, and a new Manager over the same
	// store resumes it.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final: the job will never run
// again under any manager. Interrupted is NOT terminal — it resumes on
// restart.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Spec names what a job computes: a registered kind plus that kind's
// opaque JSON payload (a campaign config, a batch request, ...).
type Spec struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Meta is a job's durable record (the manifest of the file store).
type Meta struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Error is the failure message of a StateFailed job.
	Error string `json:"error,omitempty"`
	// RowsTotal is the number of rows a complete run produces, fixed by
	// the kind's Prepare hook at submit time.
	RowsTotal int `json:"rows_total"`
	// RowsDone counts persisted rows. The row log is authoritative;
	// this counter is reconciled from it when a job (re)starts.
	RowsDone int `json:"rows_done"`
	// Resumes counts how many times the job restarted from a non-empty
	// checkpoint.
	Resumes int `json:"resumes,omitempty"`
	// TraceID is the trace of the HTTP request that submitted the job,
	// recorded on the manifest so an operator can walk from a slow job
	// back to the coordinator and shard log lines that served it (and
	// forward: the job's run context re-carries it, so shard calls made
	// on the job's behalf propagate the same ID).
	TraceID   string    `json:"trace_id,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// StartedAt is the first transition to running; FinishedAt the
	// transition to a terminal state (zero while resumable). Plain tags
	// rather than `omitzero` (a Go 1.24+ option that 1.23 ignores):
	// this only shapes the persisted manifest, where an explicit zero
	// round-trips fine and identical bytes across toolchains are worth
	// more than two omitted fields.
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
}

// Progress is the completed fraction, in [0, 1].
func (m Meta) Progress() float64 {
	if m.RowsTotal <= 0 {
		if m.State == StateSucceeded {
			return 1
		}
		return 0
	}
	p := float64(m.RowsDone) / float64(m.RowsTotal)
	if p > 1 {
		p = 1
	}
	return p
}

// Kind is one executable job type registered with a Manager.
type Kind struct {
	// Name keys Spec.Kind ("campaign", "batch", ...).
	Name string
	// Prepare validates and normalizes the payload at submit time and
	// returns the total number of rows a complete run produces. The
	// normalized payload is what gets persisted, so defaults applied
	// here are pinned for every later resume.
	Prepare func(payload json.RawMessage) (normalized json.RawMessage, totalRows int, err error)
	// Run executes or resumes the job. prior holds the checkpointed
	// rows in append order (empty on a fresh run); Run must emit only
	// the rows after them, each through sink (which persists it). ctx
	// is canceled on job cancellation and manager shutdown; Run should
	// return promptly with ctx's error when it fires.
	Run func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error
}

// Event is one entry of a job's timeline: a timestamped lifecycle
// marker persisted alongside the row log (events.ndjson in the file
// store) and served at GET /v1/jobs/{id}/events. Events are advisory —
// appended without fsync, never read back by resume logic — so they
// cost almost nothing per row and losing a tail on a crash is fine.
type Event struct {
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Detail is a human-readable elaboration ("chunk of 12 dispatched
	// to http://w1:8081", "row 3/10", ...).
	Detail string `json:"detail,omitempty"`
	// TraceID is the trace active when the event was recorded.
	TraceID string `json:"trace_id,omitempty"`
}

// Event types emitted by the manager (and, via PostEvent, by kinds).
const (
	// EventQueued: the job was accepted by Submit.
	EventQueued = "queued"
	// EventStarted: a worker picked the job up (fresh or resumed).
	EventStarted = "started"
	// EventDispatch: a kind handed work to a shard (cluster kinds emit
	// one per chunk/row dispatch, naming the shard).
	EventDispatch = "dispatch"
	// EventCheckpoint: one row was persisted.
	EventCheckpoint = "checkpointed"
	// EventFinished: the job reached a terminal or interrupted state.
	EventFinished = "finished"
)

// eventSinkKey carries the running job's event recorder in its context.
type eventSinkKey struct{}

// withEventSink returns ctx carrying an event recorder for PostEvent.
func withEventSink(ctx context.Context, fn func(typ, detail string)) context.Context {
	return context.WithValue(ctx, eventSinkKey{}, fn)
}

// PostEvent records a timeline event for the job owning ctx. Kinds call
// it from Run (the manager installs the recorder); outside a job run it
// is a no-op, so shared code paths need no guards.
func PostEvent(ctx context.Context, typ, detail string) {
	if fn, ok := ctx.Value(eventSinkKey{}).(func(typ, detail string)); ok {
		fn(typ, detail)
	}
}

// Sentinel errors.
var (
	// ErrCanceled is the cancellation cause of Manager.Cancel.
	ErrCanceled = errors.New("jobs: canceled by caller")
	// ErrShutdown is the cancellation cause of Manager.Close; jobs
	// canceled with it are checkpointed as interrupted, not canceled.
	ErrShutdown = errors.New("jobs: manager shutting down")
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrQueueFull reports that the pending-job queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotTerminal is returned by Delete for a job that could still
	// run; cancel it first.
	ErrNotTerminal = errors.New("jobs: job not in a terminal state")
)
