package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// --- stores ---

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	meta := Meta{
		ID:        "jtest01",
		Spec:      Spec{Kind: "campaign", Payload: json.RawMessage(`{"Seed":7}`)},
		State:     StateQueued,
		RowsTotal: 3,
		CreatedAt: time.Now().UTC().Truncate(time.Second),
	}
	if err := s.Put(meta); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok, err := s.Get(meta.ID)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.ID != meta.ID || got.State != StateQueued || got.RowsTotal != 3 {
		t.Fatalf("round-trip meta = %+v", got)
	}
	// Payload bytes may be reformatted by the store (the file store
	// pretty-prints manifests); the decoded value must survive exactly.
	var payload struct{ Seed int64 }
	if err := json.Unmarshal(got.Spec.Payload, &payload); err != nil || payload.Seed != 7 {
		t.Fatalf("payload = %s (err %v)", got.Spec.Payload, err)
	}

	for i := 0; i < 2; i++ {
		if err := s.AppendRow(meta.ID, json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	rows, err := s.Rows(meta.ID)
	if err != nil || len(rows) != 2 || string(rows[1]) != `{"i":1}` {
		t.Fatalf("rows = %v, err %v", rows, err)
	}

	list, err := s.List()
	if err != nil || len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("list = %+v, err %v", list, err)
	}

	meta.State = StateSucceeded
	if err := s.Put(meta); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(meta.ID); got.State != StateSucceeded {
		t.Fatalf("updated state = %s", got.State)
	}

	if err := s.Delete(meta.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, _ := s.Get(meta.ID); ok {
		t.Fatal("job survived delete")
	}
	if rows, _ := s.Rows(meta.ID); len(rows) != 0 {
		t.Fatalf("rows survived delete: %v", rows)
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore()) }
func TestFileStoreRoundTrip(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreRoundTrip(t, s)
}

func TestFileStoreRejectsTraversal(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", "a.b", ".."} {
		if _, _, err := s.Get(id); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestFileStoreToleratesTornRow(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Meta{ID: "j1", State: StateRunning, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow("j1", json.RawMessage(`{"i":0}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a trailing partial line.
	f, err := os.OpenFile(filepath.Join(dir, "j1", rowsName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":1,"tru`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rows, err := s.Rows("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0]) != `{"i":0}` {
		t.Fatalf("rows after torn write = %v", rows)
	}
}

// --- manager ---

// countKind emits rows start..total-1, resuming from len(prior).
func countKind(name string, total int) Kind {
	return Kind{
		Name: name,
		Prepare: func(p json.RawMessage) (json.RawMessage, int, error) {
			if len(p) == 0 {
				p = json.RawMessage(`{}`)
			}
			return p, total, nil
		},
		Run: func(ctx context.Context, _ json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			for i := len(prior); i < total; i++ {
				if err := sink(json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func waitState(t *testing.T, get func(string) (Meta, bool), id string, want State) Meta {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		meta, ok := get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if meta.State == want {
			return meta
		}
		if meta.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, meta.State, meta.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Meta{}
}

func closeManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(Options{Workers: 2}, countKind("count", 4))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	meta, err := m.Submit(context.Background(), Spec{Kind: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateQueued || meta.RowsTotal != 4 || meta.ID == "" {
		t.Fatalf("submitted meta = %+v", meta)
	}

	final := waitState(t, m.Get, meta.ID, StateSucceeded)
	if final.RowsDone != 4 || final.Progress() != 1 {
		t.Fatalf("final = done %d progress %v", final.RowsDone, final.Progress())
	}
	if final.StartedAt.IsZero() || final.FinishedAt.IsZero() {
		t.Fatalf("timestamps missing: %+v", final)
	}
	rows, err := m.Rows(meta.ID)
	if err != nil || len(rows) != 4 || string(rows[3]) != `{"i":3}` {
		t.Fatalf("rows = %v, err %v", rows, err)
	}
	if list := m.List(); len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("list = %+v", list)
	}
	st := m.Stats()
	if st.Succeeded != 1 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := m.Delete(meta.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok := m.Get(meta.ID); ok {
		t.Fatal("job survived delete")
	}

	if _, err := m.Submit(context.Background(), Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// blockKind emits one row, signals started, then blocks until canceled.
func blockKind(name string, started chan<- string) Kind {
	return Kind{
		Name: name,
		Prepare: func(json.RawMessage) (json.RawMessage, int, error) {
			return json.RawMessage(`{}`), 2, nil
		},
		Run: func(ctx context.Context, _ json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			if err := sink(json.RawMessage(`{"i":0}`)); err != nil {
				return err
			}
			started <- "ok"
			<-ctx.Done()
			return context.Cause(ctx)
		},
	}
}

func TestManagerCancelRunningAndQueued(t *testing.T) {
	started := make(chan string, 2)
	m, err := NewManager(Options{Workers: 1}, blockKind("block", started), countKind("count", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	blocker, err := m.Submit(context.Background(), Spec{Kind: "block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The single worker is occupied: this one is canceled while queued.
	queued, err := m.Submit(context.Background(), Spec{Kind: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Cancel(queued.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("cancel queued = %+v, %v", got, err)
	}

	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	final := waitState(t, m.Get, blocker.ID, StateCanceled)
	if final.Error != "" {
		t.Fatalf("canceled job carries error %q", final.Error)
	}
	if _, err := m.Cancel(blocker.ID); err == nil {
		t.Fatal("canceling a terminal job succeeded")
	}

	// The worker must be reclaimed: a fresh job runs to completion.
	again, err := m.Submit(context.Background(), Spec{Kind: "count"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m.Get, again.ID, StateSucceeded)

	if err := m.Delete(again.ID); err != nil {
		t.Fatal(err)
	}
}

func TestManagerDeleteRefusesLiveJobs(t *testing.T) {
	started := make(chan string, 1)
	m, err := NewManager(Options{Workers: 1}, blockKind("block", started))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)
	meta, err := m.Submit(context.Background(), Spec{Kind: "block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := m.Delete(meta.ID); !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("delete running = %v, want ErrNotTerminal", err)
	}
	if _, err := m.Cancel(meta.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m.Get, meta.ID, StateCanceled)
}

// TestManagerRestartResume drives the core checkpoint/resume contract
// with a deterministic kind: the first attempt checkpoints two rows and
// is interrupted by Close; a new manager over the same store resumes
// from row 2 — the runner observes exactly the prior rows, recomputing
// nothing.
func TestManagerRestartResume(t *testing.T) {
	store, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const total = 5
	var (
		mu       sync.Mutex
		attempts int
		priors   [][]json.RawMessage
	)
	firstCheckpointed := make(chan struct{})
	kind := Kind{
		Name: "steps",
		Prepare: func(json.RawMessage) (json.RawMessage, int, error) {
			return json.RawMessage(`{}`), total, nil
		},
		Run: func(ctx context.Context, _ json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			mu.Lock()
			attempts++
			attempt := attempts
			priors = append(priors, prior)
			mu.Unlock()
			if attempt == 1 {
				for i := 0; i < 2; i++ {
					if err := sink(json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
						return err
					}
				}
				close(firstCheckpointed)
				<-ctx.Done()
				return context.Cause(ctx)
			}
			for i := len(prior); i < total; i++ {
				if err := sink(json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
					return err
				}
			}
			return nil
		},
	}

	m1, err := NewManager(Options{Store: store, Workers: 1}, kind)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m1.Submit(context.Background(), Spec{Kind: "steps"})
	if err != nil {
		t.Fatal(err)
	}
	<-firstCheckpointed
	closeManager(t, m1)

	stored, ok, err := store.Get(meta.ID)
	if err != nil || !ok {
		t.Fatalf("stored meta: ok=%v err=%v", ok, err)
	}
	if stored.State != StateInterrupted || stored.RowsDone != 2 {
		t.Fatalf("after shutdown: %+v", stored)
	}

	m2, err := NewManager(Options{Store: store, Workers: 1}, kind)
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m2)
	if m2.Recovered() != 1 {
		t.Fatalf("recovered = %d", m2.Recovered())
	}
	final := waitState(t, m2.Get, meta.ID, StateSucceeded)
	if final.RowsDone != total || final.Resumes != 1 {
		t.Fatalf("final = %+v", final)
	}
	rows, err := m2.Rows(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if want := fmt.Sprintf(`{"i":%d}`, i); string(row) != want {
			t.Fatalf("row %d = %s, want %s", i, row, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 2 {
		t.Fatalf("runner ran %d times", attempts)
	}
	if len(priors[0]) != 0 || len(priors[1]) != 2 {
		t.Fatalf("prior rows per attempt = %d, %d; want 0, 2", len(priors[0]), len(priors[1]))
	}
}

// slowStore delays each row append, widening the window in which a
// running campaign can be interrupted mid-run.
type slowStore struct {
	Store
	delay time.Duration
}

func (s slowStore) AppendRow(id string, row json.RawMessage) error {
	time.Sleep(s.delay)
	return s.Store.AppendRow(id, row)
}

// TestCampaignJobResume pins the paper-workload acceptance path at the
// manager level: a real Section 7 campaign is interrupted by shutdown
// after at least one λ row, resumed by a fresh manager over the same
// directory, and its final rows are byte-identical to an uninterrupted
// run.
func TestCampaignJobResume(t *testing.T) {
	cfg := experiments.Config{
		Lambdas:        []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		TreesPerLambda: 2,
		MinSize:        15,
		MaxSize:        25,
		Seed:           7,
		BoundNodes:     10,
	}
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m1, err := NewManager(Options{Store: slowStore{fs, 250 * time.Millisecond}, Workers: 1}, CampaignKind())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m1.Submit(context.Background(), Spec{Kind: CampaignKindName, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if meta.RowsTotal != len(cfg.Lambdas) {
		t.Fatalf("rows_total = %d, want %d", meta.RowsTotal, len(cfg.Lambdas))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rows, err := fs.Rows(meta.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no row checkpointed in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	closeManager(t, m1)

	stored, _, err := fs.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore, err := fs.Rows(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stored.State != StateInterrupted {
		t.Fatalf("state after shutdown = %s (rows %d)", stored.State, len(rowsBefore))
	}
	if len(rowsBefore) == 0 || len(rowsBefore) >= len(cfg.Lambdas) {
		t.Fatalf("checkpoint has %d rows, want 1..%d", len(rowsBefore), len(cfg.Lambdas)-1)
	}

	m2, err := NewManager(Options{Store: fs, Workers: 1}, CampaignKind())
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m2)
	final := waitState(t, m2.Get, meta.ID, StateSucceeded)
	if final.Resumes != 1 || final.RowsDone != len(cfg.Lambdas) {
		t.Fatalf("final = %+v", final)
	}

	raws, err := m2.Rows(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CampaignRows(raws)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the direct rows through the same JSON round-trip the
	// store applies before comparing.
	directJSON, err := json.Marshal(direct.Rows)
	if err != nil {
		t.Fatal(err)
	}
	var want []experiments.Row
	if err := json.Unmarshal(directJSON, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed campaign rows differ from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCampaignKindRejectsBadConfig(t *testing.T) {
	k := CampaignKind()
	if _, _, err := k.Prepare(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, _, err := k.Prepare(json.RawMessage(`{"Nope":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, _, err := k.Prepare(json.RawMessage(`{"StartRow":2}`)); err == nil {
		t.Fatal("explicit StartRow accepted")
	}
	payload, total, err := k.Prepare(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 { // the default λ sweep 0.1..0.9
		t.Fatalf("default campaign total = %d", total)
	}
	var cfg experiments.Config
	if err := json.Unmarshal(payload, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 1 || cfg.TreesPerLambda != 30 {
		t.Fatalf("normalization not persisted: %+v", cfg)
	}
}

// --- retention / GC ---

// TestRetentionPrune: finished jobs older than RetainFor are removed —
// at startup for leftovers from earlier runs, and on PruneNow (the
// background GC's body) for jobs finishing while the manager lives.
func TestRetentionPrune(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A long-finished job from a "previous daemon".
	old := Meta{
		ID:         "jold01",
		Spec:       Spec{Kind: "count", Payload: json.RawMessage(`{}`)},
		State:      StateSucceeded,
		CreatedAt:  time.Now().UTC().Add(-time.Hour),
		FinishedAt: time.Now().UTC().Add(-time.Hour),
	}
	if err := fs.Put(old); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Options{Store: fs, Workers: 1, RetainFor: 50 * time.Millisecond, GCInterval: time.Hour},
		countKind("count", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	// The stale job went at startup.
	if _, ok := m.Get(old.ID); ok {
		t.Fatal("hour-old finished job survived startup pruning")
	}
	if _, ok, _ := fs.Get(old.ID); ok {
		t.Fatal("hour-old finished job survived on disk")
	}
	if st := m.Stats(); st.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1", st.Pruned)
	}

	// A fresh job survives until it outlives RetainFor.
	meta, err := m.Submit(context.Background(), Spec{Kind: "count", Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m.Get, meta.ID, StateSucceeded)
	if n := m.PruneNow(); n != 0 {
		t.Fatalf("pruned a job younger than RetainFor (%d)", n)
	}
	time.Sleep(80 * time.Millisecond)
	if n := m.PruneNow(); n != 1 {
		t.Fatalf("PruneNow = %d, want 1", n)
	}
	if _, ok := m.Get(meta.ID); ok {
		t.Fatal("expired job still listed")
	}
	if st := m.Stats(); st.Pruned != 2 {
		t.Fatalf("pruned total = %d, want 2", st.Pruned)
	}

	// Without a retention limit PruneNow is a no-op.
	m2, err := NewManager(Options{Store: NewMemStore(), Workers: 1}, countKind("count", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m2)
	if n := m2.PruneNow(); n != 0 {
		t.Fatalf("retention-less PruneNow = %d", n)
	}
}

// --- DELETE vs completion race ---

// gateStore blocks the first terminal-state manifest write until the
// test releases it, pinning open the window between a job's terminal
// state becoming visible and its final Put landing on disk.
type gateStore struct {
	Store
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (s *gateStore) Put(m Meta) error {
	if m.State.Terminal() {
		s.once.Do(func() {
			close(s.started)
			<-s.release
		})
	}
	return s.Store.Put(m)
}

// TestDeleteWaitsForFinalManifestWrite: a DELETE racing the job's final
// manifest write must not lose — deleting first and letting the write
// recreate the directory would leave an orphaned manifest/row-log pair
// that a restarted manager resurrects as a zombie job.
func TestDeleteWaitsForFinalManifestWrite(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gs := &gateStore{Store: fs, started: make(chan struct{}), release: make(chan struct{})}
	m, err := NewManager(Options{Store: gs, Workers: 1}, countKind("count", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	meta, err := m.Submit(context.Background(), Spec{Kind: "count", Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	<-gs.started // terminal state published, final Put now in flight

	deleted := make(chan error, 1)
	go func() { deleted <- m.Delete(meta.ID) }()
	select {
	case err := <-deleted:
		t.Fatalf("Delete returned (%v) before the final manifest write landed", err)
	case <-time.After(100 * time.Millisecond):
		// Good: Delete is waiting out the finalization.
	}

	close(gs.release)
	if err := <-deleted; err != nil {
		t.Fatalf("delete after finalization: %v", err)
	}
	if _, ok := m.Get(meta.ID); ok {
		t.Fatal("deleted job still listed")
	}
	if _, ok, _ := fs.Get(meta.ID); ok {
		t.Fatal("orphaned manifest resurrected after delete")
	}
	// A fresh manager over the same store must see nothing to recover.
	m2, err := NewManager(Options{Store: fs, Workers: 1}, countKind("count", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m2)
	if got := m2.List(); len(got) != 0 {
		t.Fatalf("zombie jobs after restart: %+v", got)
	}
}

// TestCancelOrDelete covers the DELETE-endpoint decision under each
// state, including the cancel-vs-completion race resolved atomically.
func TestCancelOrDelete(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gs := &gateStore{Store: fs, started: make(chan struct{}), release: make(chan struct{})}
	m, err := NewManager(Options{Store: gs, Workers: 1}, countKind("count", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	if _, _, err := m.CancelOrDelete("jnope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}

	meta, err := m.Submit(context.Background(), Spec{Kind: "count", Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	// The job "finishes concurrently": its terminal state is already
	// published while the final write hangs. CancelOrDelete must pick
	// the delete branch, wait, and fully remove it — not error with
	// "already succeeded" the way Cancel does.
	<-gs.started
	done := make(chan struct{})
	var gotMeta Meta
	var gotDeleted bool
	var gotErr error
	go func() {
		gotMeta, gotDeleted, gotErr = m.CancelOrDelete(meta.ID)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("CancelOrDelete finished before the final manifest write")
	case <-time.After(100 * time.Millisecond):
	}
	close(gs.release)
	<-done
	if gotErr != nil || !gotDeleted || gotMeta.ID != meta.ID {
		t.Fatalf("CancelOrDelete = (%+v, %v, %v)", gotMeta, gotDeleted, gotErr)
	}
	if _, ok, _ := fs.Get(meta.ID); ok {
		t.Fatal("job survived on disk")
	}
}

// TestCampaignKindResumesIndexedCheckpoint: a checkpoint written by a
// cluster coordinator (index-keyed rows in shard-completion order)
// resumed by the single-process campaign kind must recompute exactly
// the missing indices — not blindly continue from len(prior), which
// would duplicate some rows and skip others.
func TestCampaignKindResumesIndexedCheckpoint(t *testing.T) {
	cfg := experiments.Config{
		Lambdas:        []float64{0.2, 0.4, 0.6, 0.8},
		TreesPerLambda: 2,
		MinSize:        15,
		MaxSize:        22,
		Seed:           5,
		BoundNodes:     8,
	}
	full, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	k := CampaignKind()
	payload, total, err := k.Prepare(mustJSON(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if total != len(cfg.Lambdas) {
		t.Fatalf("total = %d", total)
	}

	// Rows 3 and 0 are checkpointed, out of order, cluster-style.
	prior := []json.RawMessage{
		mustJSON(t, IndexedCampaignRow{Index: 3, Row: full.Rows[3]}),
		mustJSON(t, IndexedCampaignRow{Index: 0, Row: full.Rows[0]}),
	}
	var emitted []json.RawMessage
	sink := func(row json.RawMessage) error {
		emitted = append(emitted, append(json.RawMessage(nil), row...))
		return nil
	}
	if err := k.Run(context.Background(), payload, prior, sink); err != nil {
		t.Fatal(err)
	}

	// Exactly the missing indices 1 and 2, in index order, index-keyed.
	if len(emitted) != 2 {
		t.Fatalf("emitted %d rows, want 2: %s", len(emitted), emitted)
	}
	merged := map[int]experiments.Row{0: full.Rows[0], 3: full.Rows[3]}
	for _, raw := range emitted {
		var line IndexedCampaignRow
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		if _, dup := merged[line.Index]; dup {
			t.Fatalf("resume re-emitted already-checkpointed row %d", line.Index)
		}
		merged[line.Index] = line.Row
	}
	for i, want := range full.Rows {
		if !reflect.DeepEqual(merged[i], want) {
			t.Fatalf("merged row %d differs:\ngot  %+v\nwant %+v", i, merged[i], want)
		}
	}

	// Position-keyed checkpoints keep the fast sequential path: resuming
	// after rows 0 and 1 emits rows 2..3 in order, without index fields.
	prior = []json.RawMessage{mustJSON(t, full.Rows[0]), mustJSON(t, full.Rows[1])}
	emitted = nil
	if err := k.Run(context.Background(), payload, prior, sink); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 2 {
		t.Fatalf("sequential resume emitted %d rows", len(emitted))
	}
	var plain experiments.Row
	if err := json.Unmarshal(emitted[0], &plain); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, full.Rows[2]) {
		t.Fatalf("sequential resume row = %+v, want row 2", plain)
	}
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
