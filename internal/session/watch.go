package session

import (
	"context"
	"time"

	"repro/internal/core"
)

// Status is a point-in-time summary of a session.
type Status struct {
	ID             string `json:"id"`
	Solver         string `json:"solver"`
	Policy         string `json:"policy"`
	Rev            uint64 `json:"rev"`
	FirstRev       uint64 `json:"first_rev"` // oldest revision watchers can still replay
	Vertices       int    `json:"vertices"`
	Clients        int    `json:"clients"`
	RemovedClients int    `json:"removed_clients,omitempty"`
	Cost           int64  `json:"cost"`
	ReplicaCount   int    `json:"replica_count"`
	NoSolution     bool   `json:"no_solution,omitempty"`
	Watchers       int    `json:"watchers"`
	Deltas         uint64 `json:"deltas"`
}

// Status snapshots the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		ID:             s.id,
		Solver:         s.solver.Name,
		Policy:         s.solver.Policy.String(),
		Rev:            s.rev,
		FirstRev:       s.firstRev,
		Vertices:       s.in.Tree.Len(),
		Clients:        s.in.Tree.NumClients() - s.nRemoved,
		RemovedClients: s.nRemoved,
		Cost:           s.cost,
		ReplicaCount:   s.nReported,
		NoSolution:     s.noSolution,
		Watchers:       s.watchers,
		Deltas:         s.deltas,
	}
}

// Replicas returns the current replica set, ascending.
func (s *Session) Replicas() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicasLocked()
}

// Solution returns the current full assignment (materialized from the
// memos for incremental solvers) and whether one exists. The returned
// solution is private to the caller.
func (s *Session) Solution() (*core.Solution, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.noSolution {
		return nil, false
	}
	if s.inc != nil {
		return s.inc.materialize(), true
	}
	return s.sol, s.sol != nil
}

// InstanceCopy returns a deep copy of the current (mutated) instance —
// the input a cold solve equivalent to the session's state would take.
func (s *Session) InstanceCopy() *core.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyInstance(s.in)
}

// Watch streams placement diffs to send until ctx ends, the session
// closes (ErrClosed), or send fails. Semantics:
//
//   - Without a resume point (haveFrom false) the stream opens with a
//     synthetic snapshot diff — the full current replica set under the
//     current revision — then continues live.
//   - With fromRev = N it replays the retained diffs for revisions N+1..
//     current, then continues live. N ahead of the current revision is
//     ErrFutureRev; N+1 older than the retention window is ErrStaleRev
//     (the caller must re-sync from a snapshot).
//
// send is called without the session lock held; a slow watcher that falls
// behind the retention window mid-stream gets ErrStaleRev.
func (s *Session) Watch(ctx context.Context, fromRev uint64, haveFrom bool, send func(Diff) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var cursor uint64
	var opening []Diff
	if haveFrom {
		if fromRev > s.rev {
			s.mu.Unlock()
			return ErrFutureRev
		}
		if fromRev+1 < s.firstRev {
			s.mu.Unlock()
			return ErrStaleRev
		}
		cursor = fromRev
	} else {
		opening = []Diff{{Rev: s.rev, Add: s.replicasLocked(), Cost: s.cost, NoSolution: s.noSolution}}
		cursor = s.rev
	}
	s.watchers++
	s.lastUsed = time.Now()
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.watchers--
		s.lastUsed = time.Now()
		s.mu.Unlock()
	}()

	for _, d := range opening {
		if err := send(d); err != nil {
			return err
		}
	}
	for {
		s.mu.Lock()
		closed := s.closed
		var batch []Diff
		for r := cursor + 1; r <= s.rev; r++ {
			d, ok := s.diffAt(r)
			if !ok {
				s.mu.Unlock()
				return ErrStaleRev
			}
			batch = append(batch, d)
		}
		ch := s.notify
		s.mu.Unlock()
		for _, d := range batch {
			if err := send(d); err != nil {
				return err
			}
			cursor = d.Rev
		}
		if len(batch) > 0 {
			continue // more may have arrived while sending
		}
		if closed {
			return ErrClosed
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
