package session

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkSessionApplyDelta measures the steady-state cost of one
// set_rate delta through a live mg session — validate, mutate, dirty
// the root path, incremental re-solve, diff — across tree sizes from
// 10³ to 10⁶ leaves. The 1e3–1e5 sizes are held to BENCH_baseline.json
// by the CI regression gate (cmd/benchgate); 1e6 runs in the smoke
// lane only, pinning that per-delta work stays near-logarithmic in
// tree size rather than linear (a cold re-solve per delta would be).
func BenchmarkSessionApplyDelta(b *testing.B) {
	for _, leaves := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			in := gen.Instance(gen.Config{
				Internal: leaves / 4,
				Clients:  leaves,
				Lambda:   0.4,
			}, 7)
			m := NewManager(Options{Resolve: testResolver})
			defer m.Close()
			s, err := m.Create(context.Background(), in, "mg", core.Multiple)
			if err != nil {
				b.Fatal(err)
			}
			clients := in.Tree.Clients()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := Op{
					Op:     OpSetRate,
					Vertex: clients[i%len(clients)],
					Value:  int64(i%47 + 1),
				}
				if _, err := s.Apply(context.Background(), []Op{op}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
