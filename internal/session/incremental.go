package session

import (
	"sort"

	"repro/internal/core"
)

// IncrementalKind names the memoized bottom-up engine a solver maps to.
// Only heuristics whose per-vertex decision depends on nothing outside the
// vertex's subtree can be recomputed over dirty root paths; the others
// (two-pass and global-ordering heuristics, the exact solvers) re-solve
// from scratch on every delta.
type IncrementalKind int

const (
	// IncrementalNone marks solvers without a memoized engine: every
	// delta triggers a cold full solve.
	IncrementalNone IncrementalKind = iota
	// IncrementalMG is heuristics.MG (MultipleGreedy): each vertex
	// absorbs pending requests up to capacity, smallest clients first.
	IncrementalMG
	// IncrementalCBU is heuristics.CBU (ClosestBottomUp): each vertex
	// absorbs its pending subtree iff the whole of it fits.
	IncrementalCBU
)

// pend is one client's requests still unserved while climbing the tree —
// the element of the per-vertex escape lists.
type pend struct {
	c   int
	rem int64
}

// bottomUp is the memoized incremental engine behind IncrementalMG and
// IncrementalCBU. Both heuristics are subtree-local: the decision at a
// vertex v is a pure function of the pending requests escaping v's child
// subtrees, so the engine memoizes, per internal vertex, the escape list
// (clients with remaining requests leaving subtree(v), in client preorder)
// and the portions served at v. A delta that dirties only a root path then
// recomputes just the dirty vertices, children before parents, reusing
// every clean subtree's memo — and produces a state byte-identical to a
// full bottom-up sweep, because the sweep itself never reads anything but
// those summaries.
type bottomUp struct {
	kind IncrementalKind
	in   *core.Instance

	esc    [][]pend // per internal vertex: pending escaping subtree(v), client preorder
	taken  [][]pend // per internal vertex: (client, load) served at v
	isRepl []bool
	served []int64 // per-client scratch: amount taken at the current vertex

	cost     int64 // Σ S[v] over replica vertices
	unserved int64 // requests escaping the root; > 0 means no solution

	scratch []pend // pending-list build buffer
	sorted  []pend // MG sort buffer
	flips   []int  // vertices whose replica flag changed in the last pass
}

func newBottomUp(kind IncrementalKind) *bottomUp {
	return &bottomUp{kind: kind}
}

// full (re)computes the whole memo state for in: a plain bottom-up sweep,
// identical in outcome to the cold heuristic. It must be called after any
// topology change (the memo arrays are resized here).
func (b *bottomUp) full(in *core.Instance) {
	b.in = in
	n := in.Tree.Len()
	if cap(b.esc) < n {
		b.esc = make([][]pend, n)
		b.taken = make([][]pend, n)
		b.isRepl = make([]bool, n)
		b.served = make([]int64, n)
	}
	b.esc = b.esc[:n]
	b.taken = b.taken[:n]
	b.isRepl = b.isRepl[:n]
	b.served = b.served[:n]
	for v := 0; v < n; v++ {
		b.esc[v] = b.esc[v][:0]
		b.taken[v] = b.taken[v][:0]
		b.isRepl[v] = false
		b.served[v] = 0
	}
	b.cost = 0
	b.flips = b.flips[:0]
	t := in.Tree
	for _, v := range t.PostOrder() {
		if t.IsInternal(v) {
			b.recompute(v)
		}
	}
}

// update recomputes the dirty internal vertices, which the caller passes
// children-before-parents (depth descending suffices: the dirty set is a
// union of root paths, so same-depth dirty vertices are never related).
// Every dirty vertex's clean children keep their memos; the root is always
// dirty, so cost/unserved end up current.
func (b *bottomUp) update(dirty []int) {
	b.flips = b.flips[:0]
	for _, v := range dirty {
		b.recompute(v)
	}
}

// recompute re-derives taken/esc at internal vertex v from its children's
// current state, mirroring one step of the cold sweep exactly (including
// the stable smallest-first tie-break of deleteMultiple for MG).
func (b *bottomUp) recompute(v int) {
	t := b.in.Tree
	pending := b.scratch[:0]
	var total int64
	for _, ch := range t.Children(v) {
		if t.IsClient(ch) {
			if r := b.in.R[ch]; r > 0 {
				pending = append(pending, pend{ch, r})
				total += r
			}
			continue
		}
		for _, p := range b.esc[ch] {
			total += p.rem
		}
		pending = append(pending, b.esc[ch]...)
	}
	b.scratch = pending

	taken := b.taken[v][:0]
	esc := b.esc[v][:0]
	w := b.in.W[v]
	switch b.kind {
	case IncrementalCBU:
		// CBU: absorb everything iff the whole pending subtree fits.
		if total > 0 && w >= total {
			taken = append(taken, pending...)
		} else {
			esc = append(esc, pending...)
		}
	case IncrementalMG:
		// MG: absorb min(total, W) — whole clients smallest-remaining
		// first (ties keep preorder, as the heuristic's stable sort
		// does), then one partial client, exactly Algorithm 10's delete.
		if total > 0 && w > 0 {
			budget := total
			if budget > w {
				budget = w
			}
			srt := append(b.sorted[:0], pending...)
			sort.SliceStable(srt, func(i, j int) bool { return srt[i].rem < srt[j].rem })
			b.sorted = srt
			for _, p := range srt {
				if p.rem <= budget {
					budget -= p.rem
					taken = append(taken, p)
					b.served[p.c] = p.rem
					if budget == 0 {
						break
					}
				} else {
					taken = append(taken, pend{p.c, budget})
					b.served[p.c] = budget
					break
				}
			}
			for _, p := range pending {
				if r := p.rem - b.served[p.c]; r > 0 {
					esc = append(esc, pend{p.c, r})
				}
			}
			for _, p := range taken {
				b.served[p.c] = 0
			}
		} else {
			esc = append(esc, pending...)
		}
	}
	b.taken[v] = taken
	b.esc[v] = esc

	if now := len(taken) > 0; now != b.isRepl[v] {
		b.isRepl[v] = now
		if now {
			b.cost += b.in.S[v]
		} else {
			b.cost -= b.in.S[v]
		}
		b.flips = append(b.flips, v)
	}
	if v == t.Root() {
		b.unserved = 0
		for _, p := range esc {
			b.unserved += p.rem
		}
	}
}

// noSolution reports whether requests escape the root — for MG that is
// exact infeasibility under the Multiple policy, for CBU the heuristic's
// failure, both matching the cold run's ErrNoSolution.
func (b *bottomUp) noSolution() bool { return b.unserved > 0 }

// replicas returns the replica vertices in ascending id order (the same
// order core.Solution.Replicas uses).
func (b *bottomUp) replicas() []int {
	out := make([]int, 0, 16)
	for _, v := range b.in.Tree.Internal() {
		if b.isRepl[v] {
			out = append(out, v)
		}
	}
	return out
}

// materialize builds the full Solution from the memos. Portions are
// emitted per client in server post-order — the order the cold sweep's
// assignments arrive in — so the result is byte-identical to the cold
// heuristic's Solution.
func (b *bottomUp) materialize() *core.Solution {
	t := b.in.Tree
	ports := make([][]core.Portion, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			continue
		}
		for _, p := range b.taken[v] {
			ports[p.c] = append(ports[p.c], core.Portion{Server: v, Load: p.rem})
		}
	}
	return core.NewSolutionFromPortions(ports, t.Clients())
}
