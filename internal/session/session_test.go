package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
)

// testResolver adapts the heuristics registry for sessions, declaring the
// two subtree-local heuristics incremental.
func testResolver(name string, p core.Policy) (Solver, error) {
	h, ok := heuristics.ByName(strings.ToUpper(name))
	if !ok {
		return Solver{}, fmt.Errorf("unknown solver %q", name)
	}
	kind := IncrementalNone
	switch strings.ToLower(name) {
	case "mg":
		kind = IncrementalMG
	case "cbu":
		kind = IncrementalCBU
	}
	return Solver{
		Name:        strings.ToLower(name),
		Policy:      h.Policy,
		Incremental: kind,
		Solve: func(_ context.Context, in *core.Instance) (*core.Solution, bool, error) {
			sol, err := h.Run(in)
			if errors.Is(err, heuristics.ErrNoSolution) {
				return nil, true, nil
			}
			return sol, false, err
		},
	}, nil
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Resolve == nil {
		opts.Resolve = testResolver
	}
	m := NewManager(opts)
	t.Cleanup(m.Close)
	return m
}

// coldSolve runs the named heuristic from scratch on in.
func coldSolve(t *testing.T, name string, in *core.Instance) (*core.Solution, bool) {
	t.Helper()
	h, ok := heuristics.ByName(strings.ToUpper(name))
	if !ok {
		t.Fatalf("unknown heuristic %q", name)
	}
	sol, err := h.Run(in)
	if errors.Is(err, heuristics.ErrNoSolution) {
		return nil, true
	}
	if err != nil {
		t.Fatalf("cold %s: %v", name, err)
	}
	return sol, false
}

// checkEquivalence pins the acceptance criterion: the session's current
// placement must be byte-identical (assignment portions, replica set,
// cost) to a cold full re-solve of the mutated instance.
func checkEquivalence(t *testing.T, s *Session, name string, step int) {
	t.Helper()
	mutated := s.InstanceCopy()
	wantSol, wantNoSol := coldSolve(t, name, mutated)
	st := s.Status()
	if st.NoSolution != wantNoSol {
		t.Fatalf("step %d: session no_solution=%v, cold=%v", step, st.NoSolution, wantNoSol)
	}
	if wantNoSol {
		if got := s.Replicas(); len(got) != 0 {
			t.Fatalf("step %d: infeasible session still reports replicas %v", step, got)
		}
		return
	}
	if want := wantSol.StorageCost(mutated); st.Cost != want {
		t.Fatalf("step %d: session cost %d, cold cost %d", step, st.Cost, want)
	}
	if got, want := s.Replicas(), wantSol.Replicas(); !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: session replicas %v, cold replicas %v", step, got, want)
	}
	gotSol, ok := s.Solution()
	if !ok {
		t.Fatalf("step %d: session has no solution but cold does", step)
	}
	if !reflect.DeepEqual(gotSol.Assign, wantSol.Assign) {
		t.Fatalf("step %d: session assignment differs from cold re-solve\nsession: %v\ncold:    %v",
			step, gotSol, wantSol)
	}
}

// randomOps builds a delta batch against the session's current tree,
// avoiding removed clients. Mix: mostly set_rate, some set_capacity, a
// few add_client/remove_client.
func randomOps(rng *rand.Rand, s *Session, removed map[int]bool) []Op {
	tr := s.InstanceCopy().Tree
	clients := tr.Clients()
	alive := make([]int, 0, len(clients))
	for _, c := range clients {
		if !removed[c] {
			alive = append(alive, c)
		}
	}
	n := 1 + rng.Intn(3)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 6 && len(alive) > 0:
			c := alive[rng.Intn(len(alive))]
			ops = append(ops, Op{Op: OpSetRate, Vertex: c, Value: int64(rng.Intn(60))})
		case k < 8:
			internal := tr.Internal()
			v := internal[rng.Intn(len(internal))]
			ops = append(ops, Op{Op: OpSetCapacity, Vertex: v, Value: int64(20 + rng.Intn(200))})
		case k < 9:
			internal := tr.Internal()
			ops = append(ops, Op{Op: OpAddClient, Parent: internal[rng.Intn(len(internal))], Rate: int64(1 + rng.Intn(40))})
		default:
			if len(alive) == 0 {
				continue
			}
			j := rng.Intn(len(alive))
			c := alive[j]
			alive = append(alive[:j], alive[j+1:]...)
			removed[c] = true
			ops = append(ops, Op{Op: OpRemoveClient, Vertex: c})
		}
	}
	if len(ops) == 0 {
		ops = append(ops, Op{Op: OpSetRate, Vertex: clients[0], Value: 1})
	}
	return ops
}

// TestSessionEquivalence is the acceptance test: random delta sequences
// against sessions for all three policies — Multiple (mg, incremental),
// Closest (cbu, incremental) and Upwards (utd, cold fallback) — checking
// after every applied batch that the incremental state is byte-identical
// to a cold full re-solve of the mutated instance.
func TestSessionEquivalence(t *testing.T) {
	solvers := []string{"mg", "cbu", "utd"}
	for _, name := range solvers {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				m := newTestManager(t, Options{})
				in := gen.Instance(gen.Config{
					Internal: 40, Clients: 120, Lambda: 0.5, Heterogeneous: true,
				}, seed)
				s, err := m.Create(context.Background(), in, name, core.Multiple)
				if err != nil {
					t.Fatalf("seed %d: create: %v", seed, err)
				}
				checkEquivalence(t, s, name, 0)
				rng := rand.New(rand.NewSource(seed * 7919))
				removed := map[int]bool{}
				for step := 1; step <= 40; step++ {
					ops := randomOps(rng, s, removed)
					if _, err := s.Apply(context.Background(), ops); err != nil {
						t.Fatalf("seed %d step %d: apply %+v: %v", seed, step, ops, err)
					}
					checkEquivalence(t, s, name, step)
				}
			}
		})
	}
}

// TestSessionIncrementalModeUsed pins that small deltas on an mg session
// actually take the incremental path (the whole point of the subsystem),
// and that a topology change falls back to a full solve.
func TestSessionIncrementalModeUsed(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 60, Clients: 200, Lambda: 0.4}, 3)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Tree.Clients()[5]
	res, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: in.R[c] + 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "incremental" {
		t.Fatalf("single-client delta took mode %q, want incremental", res.Mode)
	}
	if res.Rev != 2 {
		t.Fatalf("rev = %d, want 2", res.Rev)
	}
	res, err = s.Apply(context.Background(), []Op{{Op: OpAddClient, Parent: in.Tree.Root(), Rate: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "full" {
		t.Fatalf("topology delta took mode %q, want full", res.Mode)
	}
	if len(res.AddedClients) != 1 || res.AddedClients[0] != in.Tree.Len() {
		t.Fatalf("added clients %v, want [%d]", res.AddedClients, in.Tree.Len())
	}
	st := m.Stats()
	if st.IncrementalSolves == 0 || st.FullSolves == 0 {
		t.Fatalf("stats did not count both modes: %+v", st)
	}
}

// TestSessionDirtyThresholdFallback: a batch dirtying most of the tree
// must fall back to a full sweep — and still be equivalent.
func TestSessionDirtyThresholdFallback(t *testing.T) {
	m := newTestManager(t, Options{DirtyThreshold: 0.05})
	in := gen.Instance(gen.Config{Internal: 30, Clients: 90, Lambda: 0.4}, 11)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	clients := in.Tree.Clients()
	ops := make([]Op, 0, len(clients)/2)
	for i := 0; i < len(clients)/2; i++ {
		ops = append(ops, Op{Op: OpSetRate, Vertex: clients[i*2], Value: int64(i%30 + 1)})
	}
	res, err := s.Apply(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "full" {
		t.Fatalf("wide delta took mode %q, want full (threshold fallback)", res.Mode)
	}
	checkEquivalence(t, s, "mg", 1)
}

// TestSessionInfeasibleTransitions drives an mg session into and out of
// infeasibility and checks the watch diffs drop and re-add replicas.
func TestSessionInfeasibleTransitions(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 20, Lambda: 0.5}, 5)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	// Zero every capacity: no placement can exist while any rate > 0.
	var ops []Op
	for _, v := range in.Tree.Internal() {
		ops = append(ops, Op{Op: OpSetCapacity, Vertex: v, Value: 0})
	}
	res, err := s.Apply(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoSolution {
		t.Fatal("zero capacities should be infeasible")
	}
	if len(res.Drop) == 0 || len(s.Replicas()) != 0 {
		t.Fatalf("infeasible transition should drop all replicas: drop=%v left=%v", res.Drop, s.Replicas())
	}
	checkEquivalence(t, s, "mg", 1)
	// Restore generous capacity at the root only.
	res, err = s.Apply(context.Background(), []Op{{Op: OpSetCapacity, Vertex: in.Tree.Root(), Value: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoSolution || len(res.Add) == 0 {
		t.Fatalf("recovery should re-add replicas: %+v", res.Diff)
	}
	checkEquivalence(t, s, "mg", 2)
}

func TestSessionApplyValidation(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10}, 1)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	client := in.Tree.Clients()[0]
	internal := in.Tree.Internal()[0]
	bad := [][]Op{
		{},
		{{Op: "rename", Vertex: 1}},
		{{Op: OpSetRate, Vertex: -1, Value: 1}},
		{{Op: OpSetRate, Vertex: in.Tree.Len() + 5, Value: 1}},
		{{Op: OpSetRate, Vertex: internal, Value: 1}},
		{{Op: OpSetRate, Vertex: client, Value: -2}},
		{{Op: OpSetCapacity, Vertex: client, Value: 1}},
		{{Op: OpSetCapacity, Vertex: internal, Value: -1}},
		{{Op: OpAddClient, Parent: client, Rate: 1}},
		{{Op: OpAddClient, Parent: -3, Rate: 1}},
		{{Op: OpAddClient, Parent: internal, Rate: -1}},
		{{Op: OpRemoveClient, Vertex: internal}},
		{{Op: OpRemoveClient, Vertex: client}, {Op: OpRemoveClient, Vertex: client}},
		{{Op: OpRemoveClient, Vertex: client}, {Op: OpSetRate, Vertex: client, Value: 1}},
	}
	for i, ops := range bad {
		if _, err := s.Apply(context.Background(), ops); err == nil {
			t.Errorf("bad batch %d (%+v) accepted", i, ops)
		}
	}
	if st := s.Status(); st.Rev != 1 {
		t.Fatalf("rejected batches bumped the revision to %d", st.Rev)
	}
	// A batch can target a client added earlier in the same batch.
	newID := in.Tree.Len()
	if _, err := s.Apply(context.Background(), []Op{
		{Op: OpAddClient, Parent: internal, Rate: 2},
		{Op: OpSetRate, Vertex: newID, Value: 7},
	}); err != nil {
		t.Fatalf("intra-batch reference rejected: %v", err)
	}
	mutated := s.InstanceCopy()
	if mutated.R[newID] != 7 {
		t.Fatalf("intra-batch set_rate lost: R[%d] = %d", newID, mutated.R[newID])
	}
}

// TestSessionRollbackOnSolverFault: a failing backend must leave the
// session untouched (same revision, same instance).
func TestSessionRollbackOnSolverFault(t *testing.T) {
	var fail bool
	resolve := func(name string, p core.Policy) (Solver, error) {
		return Solver{
			Name: "flaky", Policy: core.Multiple,
			Solve: func(_ context.Context, in *core.Instance) (*core.Solution, bool, error) {
				if fail {
					return nil, false, errors.New("backend fault")
				}
				sol, err := heuristics.MG(in)
				return sol, false, err
			},
		}, nil
	}
	m := newTestManager(t, Options{Resolve: resolve})
	in := gen.Instance(gen.Config{Internal: 8, Clients: 16}, 2)
	s, err := m.Create(context.Background(), in, "flaky", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	before := s.InstanceCopy()
	c := in.Tree.Clients()[3]
	fail = true
	if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: before.R[c] + 9}}); err == nil {
		t.Fatal("faulting solve did not error")
	}
	if _, err := s.Apply(context.Background(), []Op{{Op: OpAddClient, Parent: in.Tree.Root(), Rate: 1}}); err == nil {
		t.Fatal("faulting topology solve did not error")
	}
	after := s.InstanceCopy()
	if !reflect.DeepEqual(before.R, after.R) || after.Tree.Len() != before.Tree.Len() {
		t.Fatal("failed apply mutated the instance")
	}
	if st := s.Status(); st.Rev != 1 {
		t.Fatalf("failed apply bumped revision to %d", st.Rev)
	}
	fail = false
	if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: 5}}); err != nil {
		t.Fatalf("session unusable after rollback: %v", err)
	}
}

// TestSessionStatsApplyNoDeadlock: Stats and the janitor take m.mu
// before a session's mu, while Apply updates manager counters from under
// s.mu — the counters are atomics precisely so that edge never inverts
// the lock order. Hammer both paths concurrently; an inversion deadlocks
// here.
func TestSessionStatsApplyNoDeadlock(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 8, Clients: 16}, 3)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Tree.Clients()[0]
	const deltas = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		applied := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer close(applied)
			for i := 0; i < deltas; i++ {
				if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: int64(i)}}); err != nil {
					t.Errorf("apply %d: %v", i, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				m.Stats()
				select {
				case <-applied:
					return
				default:
				}
			}
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Apply and Stats deadlocked")
	}
	if st := m.Stats(); st.Deltas != deltas {
		t.Fatalf("Stats.Deltas = %d, want %d", st.Deltas, deltas)
	}
}

// TestSessionCreateCapBoundsPending: MaxSessions must bound in-flight
// create work, not just live instances — a second create arriving while
// the first is still inside its initial solve is rejected up front
// instead of running an expensive solve that is then discarded.
func TestSessionCreateCapBoundsPending(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var solves atomic.Int32
	resolve := func(name string, p core.Policy) (Solver, error) {
		return Solver{
			Name: "slow", Policy: core.Multiple,
			Solve: func(_ context.Context, in *core.Instance) (*core.Solution, bool, error) {
				solves.Add(1)
				started <- struct{}{}
				<-release
				sol, err := heuristics.MG(in)
				return sol, false, err
			},
		}, nil
	}
	m := newTestManager(t, Options{Resolve: resolve, MaxSessions: 1})
	in := gen.Instance(gen.Config{Internal: 4, Clients: 8}, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := m.Create(context.Background(), in, "slow", core.Multiple)
		errc <- err
	}()
	<-started // the first create is inside its initial solve
	if _, err := m.Create(context.Background(), in, "slow", core.Multiple); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create during in-flight solve: err = %v, want ErrTooManySessions", err)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("first create: %v", err)
	}
	if n := solves.Load(); n != 1 {
		t.Fatalf("the cap did not bound solve work: %d solves ran, want 1", n)
	}
	// The slot freed by a failed create is reusable: delete the live
	// session and create again.
	for _, st := range m.List() {
		if err := m.Delete(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(context.Background(), in, "slow", core.Multiple); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func collectDiffs(t *testing.T, s *Session, fromRev uint64, haveFrom bool, want int) []Diff {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got []Diff
	err := s.Watch(ctx, fromRev, haveFrom, func(d Diff) error {
		got = append(got, d)
		if len(got) == want {
			cancel()
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("watch: %v", err)
	}
	if len(got) != want {
		t.Fatalf("watched %d diffs, want %d: %+v", len(got), want, got)
	}
	return got
}

// TestWatchReplayAndFold: replay from rev 0 reconstructs, by folding
// add/drop, exactly the current replica set.
func TestWatchReplayAndFold(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 25, Clients: 80, Lambda: 0.5, Heterogeneous: true}, 9)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	clients := in.Tree.Clients()
	for i := 0; i < 30; i++ {
		c := clients[rng.Intn(len(clients))]
		if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: int64(rng.Intn(80))}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	diffs := collectDiffs(t, s, 0, true, int(st.Rev))
	set := map[int]bool{}
	for i, d := range diffs {
		if d.Rev != uint64(i+1) {
			t.Fatalf("diff %d has rev %d", i, d.Rev)
		}
		for _, v := range d.Add {
			if set[v] {
				t.Fatalf("rev %d adds replica %d twice", d.Rev, v)
			}
			set[v] = true
		}
		for _, v := range d.Drop {
			if !set[v] {
				t.Fatalf("rev %d drops unknown replica %d", d.Rev, v)
			}
			delete(set, v)
		}
	}
	folded := make([]int, 0, len(set))
	for v := range set {
		folded = append(folded, v)
	}
	cur := s.Replicas()
	if len(folded) != len(cur) {
		t.Fatalf("folded %d replicas, current %d", len(folded), len(cur))
	}
	for _, v := range cur {
		if !set[v] {
			t.Fatalf("current replica %d missing from folded watch state", v)
		}
	}
	if last := diffs[len(diffs)-1]; last.Cost != st.Cost {
		t.Fatalf("last diff cost %d, status cost %d", last.Cost, st.Cost)
	}
}

func TestWatchSnapshotWithoutFrom(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 30}, 4)
	s, err := m.Create(context.Background(), in, "cbu", core.Closest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: in.Tree.Clients()[0], Value: 2}}); err != nil {
		t.Fatal(err)
	}
	d := collectDiffs(t, s, 0, false, 1)[0]
	if d.Rev != s.Status().Rev {
		t.Fatalf("snapshot rev %d, want current %d", d.Rev, s.Status().Rev)
	}
	if !reflect.DeepEqual(d.Add, s.Replicas()) {
		t.Fatalf("snapshot add %v, want %v", d.Add, s.Replicas())
	}
	if len(d.Drop) != 0 {
		t.Fatalf("snapshot has drops: %v", d.Drop)
	}
}

func TestWatchStaleAndFutureRev(t *testing.T) {
	m := newTestManager(t, Options{DiffRetention: 4})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 30}, 4)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Tree.Clients()[1]
	for i := 0; i < 10; i++ {
		if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: c, Value: int64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Revisions 1..11 exist; only the last 4 are retained.
	if err := s.Watch(context.Background(), 2, true, func(Diff) error { return nil }); !errors.Is(err, ErrStaleRev) {
		t.Fatalf("stale from_rev: got %v, want ErrStaleRev", err)
	}
	if err := s.Watch(context.Background(), 99, true, func(Diff) error { return nil }); !errors.Is(err, ErrFutureRev) {
		t.Fatalf("future from_rev: got %v, want ErrFutureRev", err)
	}
	// The newest retained window replays fine.
	st := s.Status()
	collectDiffs(t, s, st.FirstRev-1, true, int(st.Rev-st.FirstRev)+1)
}

func TestWatchLiveNotification(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 30}, 6)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan Diff, 8)
	done := make(chan error, 1)
	go func() {
		done <- s.Watch(ctx, s.Status().Rev, true, func(d Diff) error {
			got <- d
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the watcher attach
	if _, err := s.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: in.Tree.Clients()[2], Value: 55}}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.Rev != 2 {
			t.Fatalf("live diff rev %d, want 2", d.Rev)
		}
	case <-ctx.Done():
		t.Fatal("no live diff delivered")
	}
	// Deleting the instance ends the stream.
	if err := m.Delete(s.ID()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("watch after delete: got %v, want ErrClosed", err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := newTestManager(t, Options{MaxSessions: 2})
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10}, 1)
	s1, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), in, "cbu", core.Closest); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), in, "utd", core.Upwards); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("cap not enforced: %v", err)
	}
	if got, err := m.Get(s1.ID()); err != nil || got != s1 {
		t.Fatalf("Get: %v", err)
	}
	if _, err := m.Get("pi-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v", err)
	}
	if len(m.List()) != 2 {
		t.Fatalf("List: %d sessions", len(m.List()))
	}
	if err := m.Delete(s1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(s1.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s1.Apply(context.Background(), []Op{{Op: OpSetRate, Vertex: in.Tree.Clients()[0], Value: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply on deleted session: %v", err)
	}
	st := m.Stats()
	if st.Live != 1 || st.Created != 3-1 /* third create failed */ {
		t.Fatalf("stats: %+v", st)
	}
}

func TestManagerTTLExpiry(t *testing.T) {
	m := newTestManager(t, Options{TTL: 50 * time.Millisecond})
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10}, 1)
	s, err := m.Create(context.Background(), in, "mg", core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	// Poll Stats (not Get — Get touches the idle timer).
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().Live > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := m.Get(s.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired session still resolvable: %v", err)
	}
	if st := m.Stats(); st.Expired == 0 {
		t.Fatalf("expiry not counted: %+v", st)
	}
}

// TestSessionRejectsBadSolver covers resolver-level rejections.
func TestSessionRejectsBadSolver(t *testing.T) {
	m := newTestManager(t, Options{})
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10}, 1)
	if _, err := m.Create(context.Background(), in, "does-not-exist", core.Multiple); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if _, err := m.Create(context.Background(), nil, "mg", core.Multiple); err == nil {
		t.Fatal("nil instance accepted")
	}
}
