// Package session implements placement sessions: long-lived registered
// instances of the Replica Placement problem that accept typed deltas
// (rate/capacity changes, clients joining and leaving) and keep a current
// placement by re-solving incrementally. A changed client dirties only its
// root path (see tree.DirtySet); the subtree-local heuristics (MG, CBU)
// then recompute just the dirty vertices over memoized clean-subtree
// summaries, warm-starting from the previous placement, and fall back to a
// cold full solve when the dirty fraction crosses a threshold or the
// topology changes. Every applied delta yields a placement byte-equivalent
// to a cold re-solve of the mutated instance.
//
// Watchers stream placement diffs ({rev, add, drop, cost}) from a bounded
// per-session history ring, resumable from any revision still retained.
package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tree"
)

// Sentinel errors, mapped to HTTP statuses by the service layer.
var (
	// ErrNotFound reports an unknown (or already deleted) instance id.
	ErrNotFound = errors.New("session: no such instance")
	// ErrClosed reports an instance deleted or expired mid-operation.
	ErrClosed = errors.New("session: instance closed")
	// ErrTooManySessions reports the MaxSessions cap.
	ErrTooManySessions = errors.New("session: too many live instances")
	// ErrStaleRev reports a watch resume point older than the retained
	// diff history (the stream cannot be reconstructed without gaps).
	ErrStaleRev = errors.New("session: from_rev is beyond the retained diff history")
	// ErrFutureRev reports a watch resume point ahead of the current
	// revision.
	ErrFutureRev = errors.New("session: from_rev is ahead of the current revision")
	// ErrSolverFault marks a server-side solve failure (a backend error or
	// an invalid solution), as opposed to bad client input. The service
	// layer maps it to a 5xx status.
	ErrSolverFault = errors.New("session: solver fault")
)

// SolveFunc is a cold full solve: it returns the placement, or
// noSolution=true when the backend (correctly) found none, or an error for
// genuine faults. It must be deterministic in the instance.
type SolveFunc func(ctx context.Context, in *core.Instance) (sol *core.Solution, noSolution bool, err error)

// Solver is the session-facing view of a placement backend.
type Solver struct {
	// Name is the registry name ("mg", "cbu", "utd", ...).
	Name string
	// Policy is the access policy of produced placements.
	Policy core.Policy
	// Incremental selects the memoized engine equivalent to Solve, or
	// IncrementalNone to re-solve cold on every delta.
	Incremental IncrementalKind
	// Solve is the cold full solve.
	Solve SolveFunc
}

// ResolveFunc resolves a solver name (optionally policy-qualified) to a
// sessionable Solver. It fails for unknown names and for backends that
// cannot hold a session (bound solvers, multi-object solvers).
type ResolveFunc func(name string, policy core.Policy) (Solver, error)

// Options configures a Manager. The zero value (plus Resolve) is usable.
type Options struct {
	// Resolve maps solver names to backends (required).
	Resolve ResolveFunc
	// MaxSessions caps live instances (default 1024).
	MaxSessions int
	// TTL expires instances idle longer than this (0 = never). Instances
	// with attached watchers do not expire.
	TTL time.Duration
	// DiffRetention is the number of placement diffs kept per instance
	// for watch resume (default 512, min 1).
	DiffRetention int
	// DirtyThreshold is the dirty fraction of internal vertices above
	// which an incremental solver falls back to a cold full solve
	// (default 0.25): past it, rebuilding every memo in one sweep is
	// cheaper than chasing scattered root paths.
	DirtyThreshold float64
	// SolveTimeout caps each cold solve triggered by a delta when the
	// caller's context has no earlier deadline (default 60s).
	SolveTimeout time.Duration
	// Logger receives lifecycle lines. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.DiffRetention <= 0 {
		o.DiffRetention = 512
	}
	if o.DirtyThreshold <= 0 {
		o.DirtyThreshold = 0.25
	}
	if o.SolveTimeout <= 0 {
		o.SolveTimeout = 60 * time.Second
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Stats is a snapshot of the manager counters, rendered as rp_session_*
// metrics by the service layer.
type Stats struct {
	Live              int
	Watchers          int
	Created           uint64
	Deleted           uint64
	Expired           uint64
	Deltas            uint64
	Ops               uint64
	IncrementalSolves uint64
	FullSolves        uint64
	Apply             obs.HistogramSnapshot
}

// Manager owns the live placement sessions.
//
// Lock order: m.mu may be taken alone or before a Session's mu; nothing
// may take m.mu while holding a Session's mu (Session.Apply runs under
// s.mu, so the per-delta counters below are atomics, not m.mu fields).
type Manager struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Session
	pending  int // Create reservations not yet in sessions
	closed   bool

	created, deleted, expired uint64
	deltas, ops               atomic.Uint64
	incSolves, fullSolves     atomic.Uint64
	applyHist                 *obs.Histogram
	stopJanitor               chan struct{}
}

// NewManager starts a manager (and its TTL janitor when Options.TTL > 0).
func NewManager(opts Options) *Manager {
	m := &Manager{
		opts:        opts.withDefaults(),
		sessions:    map[string]*Session{},
		applyHist:   obs.NewHistogram(nil),
		stopJanitor: make(chan struct{}),
	}
	if m.opts.Resolve == nil {
		panic("session: Options.Resolve is required")
	}
	if m.opts.TTL > 0 {
		go m.janitor()
	}
	return m
}

// Close deletes every session and stops the janitor. Attached watchers
// are woken and their streams end with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stopJanitor)
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.sessions = map[string]*Session{}
	m.mu.Unlock()
	for _, s := range live {
		s.close()
	}
}

func (m *Manager) janitor() {
	period := m.opts.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.stopJanitor:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-m.opts.TTL)
		m.mu.Lock()
		var expired []*Session
		for id, s := range m.sessions {
			if s.idleSince(cutoff) {
				delete(m.sessions, id)
				expired = append(expired, s)
				m.expired++
			}
		}
		m.mu.Unlock()
		for _, s := range expired {
			s.close()
			m.opts.Logger.Info("session expired", "id", s.id, "ttl", m.opts.TTL)
		}
	}
}

// Stats snapshots the manager counters. Session locks are only touched
// after m.mu is released (see the Manager lock order).
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Live:    len(m.sessions),
		Created: m.created,
		Deleted: m.deleted,
		Expired: m.expired,
	}
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	st.Deltas = m.deltas.Load()
	st.Ops = m.ops.Load()
	st.IncrementalSolves = m.incSolves.Load()
	st.FullSolves = m.fullSolves.Load()
	st.Apply = m.applyHist.Snapshot()
	for _, s := range live {
		st.Watchers += s.watcherCount()
	}
	return st
}

// Create registers a placement instance and computes its initial
// placement (revision 1). The instance is deep-copied: later mutations of
// the caller's vectors do not leak in.
func (m *Manager) Create(ctx context.Context, in *core.Instance, solverName string, policy core.Policy) (*Session, error) {
	if in == nil {
		return nil, errors.New("session: instance required")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	solver, err := m.opts.Resolve(solverName, policy)
	if err != nil {
		return nil, err
	}
	// Reserve a session slot before the initial solve (potentially a long
	// cold solve on a huge tree) so MaxSessions bounds in-flight create
	// work too, not just live instances.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.sessions)+m.pending >= m.opts.MaxSessions {
		m.mu.Unlock()
		return nil, ErrTooManySessions
	}
	m.pending++
	m.mu.Unlock()

	s := &Session{
		m:       m,
		id:      newID(),
		solver:  solver,
		in:      copyInstance(in),
		removed: make([]bool, in.Tree.Len()),
		notify:  make(chan struct{}),
		created: time.Now(),
	}
	s.lastUsed = s.created
	s.dirty = tree.NewDirtySet(s.in.Tree)
	s.reported = make([]bool, in.Tree.Len())
	if solver.Incremental != IncrementalNone {
		s.inc = newBottomUp(solver.Incremental)
	}
	if err := s.initialSolve(ctx); err != nil {
		m.mu.Lock()
		m.pending--
		m.mu.Unlock()
		return nil, err
	}

	m.mu.Lock()
	m.pending--
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.sessions[s.id] = s
	m.created++
	m.mu.Unlock()
	m.fullSolves.Add(1)
	m.opts.Logger.Info("session created", "id", s.id, "solver", solver.Name,
		"vertices", in.Tree.Len(), "clients", in.Tree.NumClients())
	return s, nil
}

// Get returns the live session with the given id, touching its idle
// timer.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	s.touch()
	return s, nil
}

// Delete removes and closes the session; attached watchers are woken and
// their streams end.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.deleted++
	}
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.close()
	return nil
}

// List snapshots the live sessions' statuses, ordered by id.
func (m *Manager) List() []Status {
	m.mu.Lock()
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(live))
	for _, s := range live {
		out = append(out, s.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // the system CSPRNG does not fail
	}
	return "pi-" + hex.EncodeToString(b[:])
}

// copyInstance deep-copies the parameter vectors (the tree is immutable
// and shared).
func copyInstance(in *core.Instance) *core.Instance {
	cp := &core.Instance{Tree: in.Tree}
	cp.R = append([]int64(nil), in.R...)
	cp.W = append([]int64(nil), in.W...)
	cp.S = append([]int64(nil), in.S...)
	if in.Q != nil {
		cp.Q = append([]int(nil), in.Q...)
	}
	if in.Comm != nil {
		cp.Comm = append([]int64(nil), in.Comm...)
	}
	if in.BW != nil {
		cp.BW = append([]int64(nil), in.BW...)
	}
	return cp
}
