package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tree"
)

// Delta op names.
const (
	OpSetRate      = "set_rate"
	OpSetCapacity  = "set_capacity"
	OpAddClient    = "add_client"
	OpRemoveClient = "remove_client"
)

// Op is one typed delta operation. A PATCH body carries a batch of ops
// applied atomically under one revision bump.
type Op struct {
	// Op is one of set_rate, set_capacity, add_client, remove_client.
	Op string `json:"op"`
	// Vertex targets set_rate (a client), set_capacity (an internal
	// vertex) and remove_client (a client). Ids assigned to clients added
	// earlier in the same batch are valid targets.
	Vertex int `json:"vertex,omitempty"`
	// Value is the new rate (set_rate) or capacity (set_capacity).
	Value int64 `json:"value,omitempty"`
	// Parent is the internal vertex the new client attaches to
	// (add_client); the new id — Len() before the op — is returned in the
	// apply result.
	Parent int `json:"parent,omitempty"`
	// Rate is the new client's request rate (add_client).
	Rate int64 `json:"rate,omitempty"`
	// QoS/Comm/Bandwidth optionally set the new client's QoS bound and
	// its link's communication time and bandwidth cap (add_client);
	// omitted they default to unconstrained (and 1 hop).
	QoS       *int   `json:"qos,omitempty"`
	Comm      *int64 `json:"comm,omitempty"`
	Bandwidth *int64 `json:"bandwidth,omitempty"`
}

// Diff is one placement change: the replicas added and dropped by a
// revision, with the resulting storage cost. Watch streams these.
type Diff struct {
	Rev        uint64 `json:"rev"`
	Add        []int  `json:"add,omitempty"`
	Drop       []int  `json:"drop,omitempty"`
	Cost       int64  `json:"cost"`
	NoSolution bool   `json:"no_solution,omitempty"`
}

// ApplyResult reports one applied delta batch.
type ApplyResult struct {
	Diff
	// Mode is "incremental" (dirty-path recompute over memoized
	// summaries) or "full" (cold re-solve).
	Mode string `json:"mode"`
	// AddedClients are the vertex ids assigned to this batch's
	// add_client ops, in op order.
	AddedClients []int `json:"added_clients,omitempty"`
}

// Session is one registered placement instance: the mutable problem data,
// the solver, the current placement and the diff history watchers resume
// from. All methods are safe for concurrent use.
type Session struct {
	m      *Manager
	id     string
	solver Solver

	mu       sync.Mutex
	in       *core.Instance
	removed  []bool // tombstoned clients (rate pinned to 0)
	nRemoved int

	rev        uint64
	noSolution bool
	cost       int64
	reported   []bool // replica set of the last reported revision
	nReported  int

	dirty *tree.DirtySet
	inc   *bottomUp      // nil for solvers without a memoized engine
	sol   *core.Solution // fallback solvers: last cold solution

	diffs    []Diff // ring: diffs for revisions [firstRev, rev]
	diffHead int
	diffLen  int
	firstRev uint64

	notify   chan struct{} // closed and replaced on every applied revision
	watchers int
	closed   bool

	deltas   uint64
	created  time.Time
	lastUsed time.Time
}

// ID returns the instance id.
func (s *Session) ID() string { return s.id }

// SolverName returns the resolved solver's registry name.
func (s *Session) SolverName() string { return s.solver.Name }

// Policy returns the solver's access policy.
func (s *Session) Policy() core.Policy { return s.solver.Policy }

func (s *Session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

func (s *Session) idleSince(cutoff time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watchers == 0 && s.lastUsed.Before(cutoff)
}

func (s *Session) watcherCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watchers
}

func (s *Session) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.notify) // wake watchers so their streams end
	}
	s.mu.Unlock()
}

// initialSolve computes revision 1 (the initial placement) and seeds the
// diff history with it.
func (s *Session) initialSolve(ctx context.Context) error {
	out, err := s.solveFull(ctx)
	if err != nil {
		return err
	}
	s.rev = 1
	s.firstRev = 1
	s.applyOutcome(out)
	d := Diff{Rev: 1, Add: s.replicasLocked(), Cost: s.cost, NoSolution: s.noSolution}
	s.pushDiff(d)
	return nil
}

// outcome is one solve's result in session terms.
type outcome struct {
	noSolution bool
	cost       int64
	replicas   []int          // nil for incremental outcomes (flips carry the change)
	sol        *core.Solution // fallback solvers only
}

// solveFull runs a cold full solve: the memoized engine's full sweep for
// incremental solvers, the backend otherwise.
func (s *Session) solveFull(ctx context.Context) (outcome, error) {
	if s.inc != nil {
		s.inc.full(s.in)
		out := outcome{noSolution: s.inc.noSolution()}
		if !out.noSolution {
			out.cost = s.inc.cost
			out.replicas = s.inc.replicas()
		}
		return out, nil
	}
	ctx, cancel := context.WithTimeout(ctx, s.m.opts.SolveTimeout)
	defer cancel()
	sol, noSol, err := s.solver.Solve(ctx, s.in)
	if err != nil {
		// Context errors (the solve timeout, a gone client) pass through
		// for their own status mapping; everything else is a backend fault.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return outcome{}, err
		}
		return outcome{}, fmt.Errorf("%w: solver %s: %w", ErrSolverFault, s.solver.Name, err)
	}
	out := outcome{noSolution: noSol, sol: sol}
	if !noSol {
		if sol == nil {
			return outcome{}, fmt.Errorf("%w: solver %s returned neither a solution nor infeasibility", ErrSolverFault, s.solver.Name)
		}
		if verr := sol.Validate(s.in, s.solver.Policy); verr != nil {
			return outcome{}, fmt.Errorf("%w: solver %s produced an invalid solution: %w", ErrSolverFault, s.solver.Name, verr)
		}
		out.cost = sol.StorageCost(s.in)
		out.replicas = sol.Replicas()
	}
	return out, nil
}

// applyOutcome installs a full solve's outcome: reported flags, cost and
// the fallback solution snapshot. Caller holds the lock (or owns the
// session exclusively, as initialSolve does).
func (s *Session) applyOutcome(out outcome) {
	s.noSolution = out.noSolution
	s.cost = out.cost
	s.sol = out.sol
	for v := range s.reported {
		s.reported[v] = false
	}
	s.nReported = 0
	for _, v := range out.replicas {
		s.reported[v] = true
	}
	s.nReported = len(out.replicas)
	if out.noSolution {
		s.cost = 0
	}
}

// Apply validates and applies a delta batch atomically: all ops or none,
// one revision bump, one re-solve, one diff. On a solver fault the
// mutation is rolled back and the revision unchanged.
func (s *Session) Apply(ctx context.Context, ops []Op) (*ApplyResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("session: empty delta batch")
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.lastUsed = start

	adds, err := s.validateOps(ops)
	if err != nil {
		return nil, err
	}

	prevIn, prevRemoved, prevNRemoved := s.in, s.removed, s.nRemoved
	prevDirty := s.dirty
	var undo []scalarUndo
	var addedClients []int
	topo := adds > 0
	if topo {
		addedClients = s.applyTopo(ops, adds)
	} else {
		undo = s.applyScalars(ops)
	}

	mode := "full"
	var out outcome
	var flips []int
	switch {
	case s.inc != nil && !topo && s.dirty.InternalFraction() <= s.m.opts.DirtyThreshold:
		mode = "incremental"
		s.inc.update(s.dirtyInternalDeepFirst())
		flips = s.inc.flips
		out = outcome{noSolution: s.inc.noSolution(), cost: s.inc.cost}
		if out.noSolution {
			out.cost = 0
		}
	case s.inc != nil:
		// Too much of the tree is dirty (or it changed shape): one cold
		// sweep rebuilds every memo cheaper than chasing root paths.
		s.inc.full(s.in)
		out = outcome{noSolution: s.inc.noSolution()}
		if !out.noSolution {
			out.cost = s.inc.cost
			out.replicas = s.inc.replicas()
		}
	default:
		out, err = s.solveFull(ctx)
		if err != nil {
			// Roll back: scalar ops are undone in place, topology ops
			// worked on copies the old instance never saw.
			if topo {
				s.in, s.removed, s.nRemoved, s.dirty = prevIn, prevRemoved, prevNRemoved, prevDirty
			} else {
				s.undoScalars(undo)
			}
			s.dirty.Reset()
			return nil, err
		}
	}
	s.dirty.Reset()

	s.rev++
	d := Diff{Rev: s.rev, Cost: out.cost, NoSolution: out.noSolution}
	prevNoSol := s.noSolution
	if mode == "incremental" && !prevNoSol && !out.noSolution {
		// Both revisions feasible: the engine's flips are exactly the
		// replica churn; reported flags track them in O(dirty).
		for _, v := range flips {
			if s.inc.isRepl[v] {
				d.Add = append(d.Add, v)
				s.reported[v] = true
				s.nReported++
			} else {
				d.Drop = append(d.Drop, v)
				s.reported[v] = false
				s.nReported--
			}
		}
		s.noSolution = out.noSolution
		s.cost = out.cost
		s.sol = nil
	} else if mode == "incremental" {
		// A feasibility transition: reconcile reported flags against the
		// engine's in one scan.
		d.Add, d.Drop = s.reconcile(func(v int) bool { return !out.noSolution && s.inc.isRepl[v] })
		s.noSolution = out.noSolution
		s.cost = out.cost
		s.sol = nil
	} else {
		d.Add, d.Drop = s.reconcileList(out.replicas)
		s.applyOutcome(out)
	}
	sort.Ints(d.Add)
	sort.Ints(d.Drop)
	s.pushDiff(d)

	old := s.notify
	s.notify = make(chan struct{})
	close(old)

	// Manager counters are atomics: taking m.mu here (under s.mu) would
	// invert the Manager lock order and deadlock against Stats/janitor.
	s.deltas++
	m := s.m
	m.deltas.Add(1)
	m.ops.Add(uint64(len(ops)))
	if mode == "incremental" {
		m.incSolves.Add(1)
	} else {
		m.fullSolves.Add(1)
	}
	m.applyHist.Observe(time.Since(start))

	res := &ApplyResult{Diff: d, Mode: mode, AddedClients: addedClients}
	return res, nil
}

type scalarUndo struct {
	rate   bool // else capacity / removal
	remove bool
	v      int
	old    int64
}

// validateOps checks the whole batch against the current state (tracking
// ids and tombstones introduced by earlier ops in the same batch) and
// returns the number of add_client ops.
func (s *Session) validateOps(ops []Op) (adds int, err error) {
	n := s.in.Tree.Len()
	var batchRemoved map[int]bool
	virtual := n
	for i, op := range ops {
		fail := func(format string, args ...any) (int, error) {
			return 0, fmt.Errorf("session: op %d (%s): %s", i, op.Op, fmt.Sprintf(format, args...))
		}
		isClient := func(v int) bool {
			if v >= n {
				return true // batch-added vertices are always clients
			}
			return s.in.Tree.IsClient(v)
		}
		removed := func(v int) bool {
			if v < n && s.removed[v] {
				return true
			}
			return batchRemoved[v]
		}
		switch op.Op {
		case OpSetRate:
			if op.Vertex < 0 || op.Vertex >= virtual {
				return fail("vertex %d out of range [0,%d)", op.Vertex, virtual)
			}
			if !isClient(op.Vertex) {
				return fail("vertex %d is not a client", op.Vertex)
			}
			if removed(op.Vertex) {
				return fail("client %d was removed", op.Vertex)
			}
			if op.Value < 0 {
				return fail("negative rate %d", op.Value)
			}
		case OpSetCapacity:
			if op.Vertex < 0 || op.Vertex >= n {
				return fail("vertex %d out of range [0,%d)", op.Vertex, n)
			}
			if isClient(op.Vertex) {
				return fail("vertex %d is not an internal vertex", op.Vertex)
			}
			if op.Value < 0 {
				return fail("negative capacity %d", op.Value)
			}
		case OpAddClient:
			if op.Parent < 0 || op.Parent >= n || s.in.Tree.IsClient(op.Parent) {
				return fail("parent %d is not an existing internal vertex", op.Parent)
			}
			if op.Rate < 0 {
				return fail("negative rate %d", op.Rate)
			}
			if op.QoS != nil && *op.QoS < 0 && *op.QoS != core.NoQoS {
				return fail("invalid qos %d", *op.QoS)
			}
			if op.Comm != nil && *op.Comm < 0 {
				return fail("negative comm %d", *op.Comm)
			}
			if op.Bandwidth != nil && *op.Bandwidth < 0 && *op.Bandwidth != core.NoBandwidth {
				return fail("invalid bandwidth %d", *op.Bandwidth)
			}
			adds++
			virtual++
		case OpRemoveClient:
			if op.Vertex < 0 || op.Vertex >= virtual {
				return fail("vertex %d out of range [0,%d)", op.Vertex, virtual)
			}
			if !isClient(op.Vertex) {
				return fail("vertex %d is not a client", op.Vertex)
			}
			if removed(op.Vertex) {
				return fail("client %d was already removed", op.Vertex)
			}
			if batchRemoved == nil {
				batchRemoved = map[int]bool{}
			}
			batchRemoved[op.Vertex] = true
		default:
			return fail("unknown op %q (want set_rate, set_capacity, add_client or remove_client)", op.Op)
		}
	}
	return adds, nil
}

// applyScalars mutates the instance in place for a topology-preserving
// batch, marking dirty root paths and recording an undo log.
func (s *Session) applyScalars(ops []Op) []scalarUndo {
	undo := make([]scalarUndo, 0, len(ops))
	for _, op := range ops {
		switch op.Op {
		case OpSetRate:
			undo = append(undo, scalarUndo{rate: true, v: op.Vertex, old: s.in.R[op.Vertex]})
			s.in.R[op.Vertex] = op.Value
			s.dirty.MarkPath(op.Vertex)
		case OpSetCapacity:
			undo = append(undo, scalarUndo{v: op.Vertex, old: s.in.W[op.Vertex]})
			s.in.W[op.Vertex] = op.Value
			s.dirty.MarkPath(op.Vertex)
		case OpRemoveClient:
			undo = append(undo, scalarUndo{remove: true, v: op.Vertex, old: s.in.R[op.Vertex]})
			s.in.R[op.Vertex] = 0
			s.removed[op.Vertex] = true
			s.nRemoved++
			s.dirty.MarkPath(op.Vertex)
		}
	}
	return undo
}

func (s *Session) undoScalars(undo []scalarUndo) {
	for i := len(undo) - 1; i >= 0; i-- {
		u := undo[i]
		switch {
		case u.rate:
			s.in.R[u.v] = u.old
		case u.remove:
			s.in.R[u.v] = u.old
			s.removed[u.v] = false
			s.nRemoved--
		default:
			s.in.W[u.v] = u.old
		}
	}
}

// applyTopo applies a batch containing add_client ops: the parameter
// vectors are copied once with room for every newcomer, ops run in order
// against the copies, and the tree is rebuilt once at the end. Existing
// vertex ids are stable (newcomers append).
func (s *Session) applyTopo(ops []Op, adds int) (addedClients []int) {
	old := s.in
	n := old.Tree.Len()
	grow := func(v []int64) []int64 {
		out := make([]int64, n, n+adds)
		copy(out, v)
		return out
	}
	in := &core.Instance{R: grow(old.R), W: grow(old.W), S: grow(old.S)}
	anyQoS := old.Q != nil
	anyComm := old.Comm != nil
	anyBW := old.BW != nil
	for _, op := range ops {
		if op.Op != OpAddClient {
			continue
		}
		anyQoS = anyQoS || op.QoS != nil
		anyComm = anyComm || op.Comm != nil
		anyBW = anyBW || op.Bandwidth != nil
	}
	if anyQoS {
		in.Q = make([]int, n, n+adds)
		if old.Q != nil {
			copy(in.Q, old.Q)
		} else {
			for v := range in.Q {
				in.Q[v] = core.NoQoS
			}
		}
	}
	if anyComm {
		in.Comm = make([]int64, n, n+adds)
		if old.Comm != nil {
			copy(in.Comm, old.Comm)
		} else {
			for v := range in.Comm {
				in.Comm[v] = 1 // nil Comm counts every link as one hop
			}
		}
	}
	if anyBW {
		in.BW = make([]int64, n, n+adds)
		if old.BW != nil {
			copy(in.BW, old.BW)
		} else {
			for v := range in.BW {
				in.BW[v] = core.NoBandwidth
			}
		}
	}
	parents := make([]int, n, n+adds)
	copy(parents, old.Tree.Parents())
	isClient := make([]bool, n, n+adds)
	copy(isClient, old.Tree.ClientFlags())
	removed := make([]bool, n, n+adds)
	copy(removed, s.removed)
	nRemoved := s.nRemoved

	for _, op := range ops {
		switch op.Op {
		case OpSetRate:
			in.R[op.Vertex] = op.Value
		case OpSetCapacity:
			in.W[op.Vertex] = op.Value
		case OpRemoveClient:
			in.R[op.Vertex] = 0
			removed[op.Vertex] = true
			nRemoved++
		case OpAddClient:
			id := len(parents)
			parents = append(parents, op.Parent)
			isClient = append(isClient, true)
			removed = append(removed, false)
			in.R = append(in.R, op.Rate)
			in.W = append(in.W, 0)
			in.S = append(in.S, 0)
			if in.Q != nil {
				q := core.NoQoS
				if op.QoS != nil {
					q = *op.QoS
				}
				in.Q = append(in.Q, q)
			}
			if in.Comm != nil {
				c := int64(1)
				if op.Comm != nil {
					c = *op.Comm
				}
				in.Comm = append(in.Comm, c)
			}
			if in.BW != nil {
				bw := core.NoBandwidth
				if op.Bandwidth != nil {
					bw = *op.Bandwidth
				}
				in.BW = append(in.BW, bw)
			}
			addedClients = append(addedClients, id)
		}
	}
	t, err := tree.FromParents(parents, isClient)
	if err != nil {
		// validateOps admits only existing internal parents, so the
		// rebuilt tree cannot be malformed.
		panic(fmt.Sprintf("session: rebuilt tree invalid: %v", err))
	}
	in.Tree = t
	s.in = in
	s.removed = removed
	s.nRemoved = nRemoved
	s.dirty = tree.NewDirtySet(t)
	if len(s.reported) < t.Len() {
		grown := make([]bool, t.Len())
		copy(grown, s.reported)
		s.reported = grown
	}
	return addedClients
}

// dirtyInternalDeepFirst returns the dirty internal vertices ordered
// children before parents (depth descending — sufficient because the
// dirty set is a union of root paths, so equal-depth members are
// unrelated).
func (s *Session) dirtyInternalDeepFirst() []int {
	t := s.in.Tree
	verts := s.dirty.Vertices()
	out := make([]int, 0, len(verts))
	for _, v := range verts {
		if t.IsInternal(v) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return t.Depth(out[i]) > t.Depth(out[j]) })
	return out
}

// reconcile diffs the reported replica flags against now(v) over every
// internal vertex, updating them in place. O(internal) — used by full
// solves and feasibility transitions, whose solve already paid O(n).
func (s *Session) reconcile(now func(v int) bool) (add, drop []int) {
	for _, v := range s.in.Tree.Internal() {
		cur := now(v)
		if cur == s.reported[v] {
			continue
		}
		if cur {
			add = append(add, v)
			s.nReported++
		} else {
			drop = append(drop, v)
			s.nReported--
		}
		s.reported[v] = cur
	}
	return add, drop
}

// reconcileList is reconcile against a sorted replica list (nil for an
// infeasible outcome). It does not update the flags — applyOutcome
// rewrites them wholesale right after.
func (s *Session) reconcileList(replicas []int) (add, drop []int) {
	in := make(map[int]bool, len(replicas))
	for _, v := range replicas {
		in[v] = true
		if !s.reported[v] {
			add = append(add, v)
		}
	}
	for _, v := range s.in.Tree.Internal() {
		if v < len(s.reported) && s.reported[v] && !in[v] {
			drop = append(drop, v)
		}
	}
	return add, drop
}

// replicasLocked returns the reported replica set, ascending. Caller
// holds the lock.
func (s *Session) replicasLocked() []int {
	out := make([]int, 0, s.nReported)
	for _, v := range s.in.Tree.Internal() {
		if s.reported[v] {
			out = append(out, v)
		}
	}
	return out
}

// pushDiff appends a diff to the retention ring, dropping the oldest
// revision once full. Caller holds the lock.
func (s *Session) pushDiff(d Diff) {
	keep := s.m.opts.DiffRetention
	if s.diffs == nil {
		s.diffs = make([]Diff, keep)
	}
	if s.diffLen == keep {
		s.diffs[s.diffHead] = d
		s.diffHead = (s.diffHead + 1) % keep
		s.firstRev++
		return
	}
	s.diffs[(s.diffHead+s.diffLen)%keep] = d
	s.diffLen++
}

// diffAt returns the retained diff for revision r. Caller holds the lock.
func (s *Session) diffAt(r uint64) (Diff, bool) {
	if r < s.firstRev || r >= s.firstRev+uint64(s.diffLen) {
		return Diff{}, false
	}
	i := (s.diffHead + int(r-s.firstRev)) % s.m.opts.DiffRetention
	return s.diffs[i], true
}
