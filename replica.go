// Package replica is the public API of this library, a faithful
// reproduction of Benoit, Rehn and Robert, "Strategies for Replica
// Placement in Tree Networks" (IPDPS 2007).
//
// The problem: a fixed distribution tree has clients at the leaves (each
// issuing r_i requests) and candidate servers at the internal vertices
// (capacity W_j, storage cost s_j). Replicas must be placed, and requests
// routed to replicas on each client's path to the root, at minimal total
// storage cost, under one of three access policies:
//
//   - Closest:  each client uses the first replica above it (classical);
//   - Upwards:  each client uses one replica anywhere on its path;
//   - Multiple: a client's requests may split across several replicas.
//
// The package re-exports the implementation from the internal packages:
// exact solvers (the paper's optimal Multiple/homogeneous algorithm, an
// optimal Closest/homogeneous greedy, brute force for validation), the
// eight Section 6 heuristics plus MixedBest, LP-based lower bounds
// (Section 5/7.1), QoS and bandwidth constraints, random instance
// generation, and the Section 7 experimental campaign.
//
// Quick start:
//
//	b := replica.NewTreeBuilder()
//	root := b.AddRoot()
//	n1 := b.AddNode(root)
//	c1 := b.AddClient(n1)
//	in := replica.NewInstance(b.MustBuild())
//	in.W[root], in.W[n1] = 10, 10
//	in.S[root], in.S[n1] = 1, 1
//	in.R[c1] = 7
//	sol, err := replica.OptimalMultipleHomogeneous(in)
package replica

import (
	"context"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/heuristics"
	"repro/internal/jobs"
	"repro/internal/lpbound"
	"repro/internal/multiobject"
	"repro/internal/optimize"
	"repro/internal/render"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/tree"
)

// Core model types, re-exported.
type (
	// Instance is a Replica Placement problem instance.
	Instance = core.Instance
	// Solution is a replica placement plus request assignment.
	Solution = core.Solution
	// Policy selects the access policy.
	Policy = core.Policy
	// Portion is one (server, load) share of a client's requests.
	Portion = core.Portion
	// CostModel weights storage/read/update costs (Section 8.2).
	CostModel = core.CostModel
	// Tree is the distribution-tree topology.
	Tree = tree.Tree
	// TreeBuilder incrementally constructs a Tree.
	TreeBuilder = tree.Builder
)

// Access policies.
const (
	Closest  = core.Closest
	Upwards  = core.Upwards
	Multiple = core.Multiple
)

// Sentinels for unconstrained clients and links.
const (
	NoQoS       = core.NoQoS
	NoBandwidth = core.NoBandwidth
)

// Policies lists the three access policies in the paper's order.
var Policies = core.Policies

// NewTreeBuilder returns an empty tree builder.
func NewTreeBuilder() *TreeBuilder { return tree.NewBuilder() }

// NewInstance allocates an instance over the tree with zeroed parameters.
func NewInstance(t *Tree) *Instance { return core.NewInstance(t) }

// ErrNoSolution is returned by solvers when the instance is infeasible
// (or, for heuristics, when the heuristic fails to find a placement).
var ErrNoSolution = exact.ErrNoSolution

// OptimalMultipleHomogeneous runs the paper's polynomial optimal
// algorithm (Section 4.1) for the Multiple policy on homogeneous
// platforms.
func OptimalMultipleHomogeneous(in *Instance) (*Solution, error) {
	return exact.MultipleHomogeneous(in)
}

// OptimalClosestHomogeneous runs the optimal bottom-up greedy for the
// Closest policy on homogeneous platforms.
func OptimalClosestHomogeneous(in *Instance) (*Solution, error) {
	return exact.ClosestHomogeneous(in)
}

// BruteForce computes an optimal solution by exhaustive enumeration
// (exponential; small instances only — see exact.MaxBruteForceNodes).
// Cancellation of ctx stops the enumeration promptly.
func BruteForce(ctx context.Context, in *Instance, p Policy) (*Solution, error) {
	return exact.BruteForce(ctx, in, p)
}

// HeuristicNames lists the Section 6 heuristics plus "MB" (MixedBest).
func HeuristicNames() []string {
	names := make([]string, 0, len(heuristics.All)+1)
	for _, h := range heuristics.All {
		names = append(names, h.Name)
	}
	return append(names, "MB")
}

// Solve runs the named heuristic ("CTDA", "CTDLF", "CBU", "UTD", "UBCF",
// "MTD", "MBU", "MG" or "MB").
func Solve(in *Instance, heuristic string) (*Solution, error) {
	h, ok := heuristics.ByName(heuristic)
	if !ok {
		return nil, &UnknownHeuristicError{Name: heuristic}
	}
	return h.Run(in)
}

// UnknownHeuristicError reports an unregistered heuristic name.
type UnknownHeuristicError struct{ Name string }

func (e *UnknownHeuristicError) Error() string {
	return "replica: unknown heuristic " + e.Name
}

// MixedBest runs all eight heuristics and returns the cheapest valid
// solution (a Multiple-policy solution).
func MixedBest(in *Instance) (*Solution, error) { return heuristics.MB(in) }

// RationalBound returns the fully rational LP relaxation value — a weak
// lower bound on the optimal storage cost (Section 5.3).
func RationalBound(in *Instance, p Policy) (float64, error) {
	return lpbound.Rational(in, p)
}

// LowerBound computes the Section 7.1 refined bound (integer placement
// variables, rational assignments) via budgeted branch-and-bound; the
// result is a valid lower bound even when truncated. Cancellation of ctx
// stops the search between branch nodes.
func LowerBound(ctx context.Context, in *Instance, p Policy, maxNodes int) (value float64, exact bool, err error) {
	b, err := lpbound.Refined(ctx, in, p, lpbound.Options{MaxNodes: maxNodes})
	if err != nil {
		return 0, false, err
	}
	return b.Value, b.Exact, nil
}

// GenConfig re-exports the random instance generator configuration.
type GenConfig = gen.Config

// Generate builds a seeded random instance.
func Generate(cfg GenConfig, seed int64) *Instance { return gen.Instance(cfg, seed) }

// CampaignConfig re-exports the Section 7 experiment configuration.
type CampaignConfig = experiments.Config

// CampaignResults re-exports the campaign outcome.
type CampaignResults = experiments.Results

// RunCampaign executes the Section 7 simulation campaign (Figures 9-12).
func RunCampaign(cfg CampaignConfig) (*CampaignResults, error) {
	return experiments.Run(cfg)
}

// OptimalClosestHomogeneousQoS solves Closest/homogeneous with QoS
// distance bounds (the polynomial case the paper cites from Liu et al.).
func OptimalClosestHomogeneousQoS(in *Instance) (*Solution, error) {
	return exact.ClosestHomogeneousQoS(in)
}

// SolveQoS runs the QoS-aware variant for the given policy ("Closest" ->
// CTDA-QoS, "Upwards" -> UBCF-QoS, "Multiple" -> MG-QoS).
func SolveQoS(in *Instance, p Policy) (*Solution, error) {
	for _, h := range heuristics.AllQoS {
		if h.Policy == p {
			return h.Run(in)
		}
	}
	return nil, &UnknownHeuristicError{Name: "qos:" + p.String()}
}

// SolveBandwidth runs the bandwidth-aware variant for the given policy
// ("Closest" -> CTDA-BW, "Upwards" -> UBCF-BW, "Multiple" -> MG-BW).
// MG-BW decides Multiple+bandwidth feasibility exactly.
func SolveBandwidth(in *Instance, p Policy) (*Solution, error) {
	for _, h := range heuristics.AllBW {
		if h.Policy == p {
			return h.Run(in)
		}
	}
	return nil, &UnknownHeuristicError{Name: "bw:" + p.String()}
}

// OptimizeOptions re-exports the combined-objective local search options.
type OptimizeOptions = optimize.Options

// Optimize improves a Multiple-policy solution under a combined
// storage/read/update objective (Section 8.2) by local search over
// replica sets. The result is never worse than the start.
func Optimize(in *Instance, start *Solution, opts OptimizeOptions) (*Solution, float64, error) {
	res, err := optimize.Improve(in, start, opts)
	if err != nil {
		return nil, 0, err
	}
	return res.Solution, res.Cost, nil
}

// Serving subsystem, re-exported. Engine is a long-running concurrent
// solver service: every exact solver, heuristic, QoS/bandwidth variant
// and LP bound behind one request interface, scheduled on a bounded
// worker pool with a canonical-hash solution cache. cmd/rpserve exposes
// it over HTTP.
type (
	// Engine is the concurrent placement engine.
	Engine = service.Engine
	// EngineOptions configures NewEngine; its zero value is ready to use.
	EngineOptions = service.EngineOptions
	// ServiceRequest names one computation (instance + solver + options).
	ServiceRequest = service.Request
	// ServiceResponse is the outcome of a ServiceRequest.
	ServiceResponse = service.Response
	// ServiceOptions are the per-request knobs (deadline, cache bypass,
	// bound budget).
	ServiceOptions = service.Options
	// SolverRegistry maps solver names to backends; custom backends
	// (e.g. sharded or remote solvers) register here.
	SolverRegistry = service.Registry
)

// NewEngine starts a concurrent placement engine and its worker pool.
// Callers must Close it to release the workers.
func NewEngine(opts EngineOptions) *Engine { return service.NewEngine(opts) }

// NewServiceHandler returns the engine's HTTP API (the one cmd/rpserve
// serves), for embedding into an existing server. Async /v1/jobs
// endpoints answer 501 here; use NewServiceHandlerOpts with a
// JobsManager to enable them.
func NewServiceHandler(e *Engine) http.Handler { return service.NewHandler(e) }

// ServiceHandlerOptions configures NewServiceHandlerOpts (async job
// manager, inline-campaign limits).
type ServiceHandlerOptions = service.HandlerOptions

// NewServiceHandlerOpts is NewServiceHandler with options.
func NewServiceHandlerOpts(e *Engine, opts ServiceHandlerOptions) http.Handler {
	return service.NewHandlerOpts(e, opts)
}

// JobsManager owns async campaign/batch jobs end to end: bounded
// concurrent execution, per-job cancellation, row-by-row checkpoints,
// and — over a persistent store — resume after a restart.
type JobsManager = jobs.Manager

// NewJobsManager builds a job manager for the engine. dir selects the
// persistent file store (empty = in-memory); workers bounds
// concurrently running jobs. Close it before the engine on shutdown so
// running jobs checkpoint.
func NewJobsManager(e *Engine, dir string, workers int) (*JobsManager, error) {
	return service.NewJobsManager(e, dir, workers)
}

// Cluster subsystem, re-exported: sharded multi-process execution over
// worker daemons (rpworker, or rpserve -worker) speaking the ordinary
// HTTP surface.
type (
	// ClusterPool fans work out over a dynamic set of worker shards,
	// with per-shard health probing, circuit breaking, bounded
	// in-flight requests, load-weighted placement and
	// retry-with-failover. Membership changes at runtime via
	// AddShard/RemoveShard (the POST/DELETE /v1/cluster/shards API),
	// SyncFile (a shards-file reload) or a worker's ClusterRegistrar.
	ClusterPool = cluster.Pool
	// ClusterPoolOptions configures NewClusterPool; its zero value is
	// ready to use.
	ClusterPoolOptions = cluster.PoolOptions
	// ClusterShardEntry is one parsed shards-file line (address plus
	// optional explicit weight).
	ClusterShardEntry = cluster.ShardEntry
	// ClusterRegistrar keeps a worker registered with a coordinator:
	// POST at startup, heartbeat re-registration, DELETE on Stop.
	ClusterRegistrar = cluster.Registrar
)

// NewClusterPool builds a shard pool over worker addresses ("host:port"
// or full URLs) and starts its health prober. The list may be empty —
// workers can join a running pool later. Close it when done.
func NewClusterPool(addrs []string, opts ClusterPoolOptions) (*ClusterPool, error) {
	return cluster.NewPool(addrs, opts)
}

// ParseClusterShardsFile parses a shards file: one "addr [weight]" per
// line, #-comments allowed. Feed the entries to ClusterPool.SyncFile
// to reconcile a running pool's file-managed membership.
func ParseClusterShardsFile(r io.Reader) ([]ClusterShardEntry, error) {
	return cluster.ParseShardsFile(r)
}

// RegisterRemoteSolvers registers, for every solver in the registry, a
// "<name>@remote" twin whose computation is proxied through the pool.
// The engine's cache, single-flight and validation apply to the remote
// twins unchanged.
func RegisterRemoteSolvers(reg *SolverRegistry, p *ClusterPool) error {
	return cluster.RegisterRemote(reg, p)
}

// ClusterJobKinds returns the sharded campaign/batch job kinds a
// coordinator registers in place of the local ones (see
// ServiceJobsOptions.Kinds): λ rows and variation indices are
// partitioned across the pool's shards and merged back into the same
// append-only row log, byte-identical to a single-process run.
func ClusterJobKinds(e *Engine, p *ClusterPool) []jobs.Kind {
	return cluster.Kinds(e, p)
}

// ServiceJobsOptions configures NewJobsManagerOpts (store directory,
// concurrency, retention, job kinds).
type ServiceJobsOptions = service.JobsOptions

// NewJobsManagerOpts is NewJobsManager with retention and kind control.
func NewJobsManagerOpts(e *Engine, opts ServiceJobsOptions) (*JobsManager, error) {
	return service.NewJobsManagerOpts(e, opts)
}

// Placement sessions, re-exported: a registered instance that stays
// live on the server, absorbs typed delta ops (set_rate, set_capacity,
// add_client, remove_client) and re-solves — incrementally for the
// subtree-local heuristics — emitting watchable placement diffs. The
// HTTP surface is /v1/instances (see api/openapi.yaml).
type (
	// SessionManager owns the live sessions: creation against a solver
	// resolver, lookup, deletion, idle expiry, aggregate stats.
	SessionManager = session.Manager
	// SessionManagerOptions configures NewSessionManager; the zero
	// value resolves nothing, so set Resolve (ServiceSessionResolver
	// adapts a SolverRegistry).
	SessionManagerOptions = session.Options
	// PlacementSession is one live session: Apply ops, read Status,
	// Replicas and Solution, Watch diffs.
	PlacementSession = session.Session
	// SessionOp is one typed delta op of an Apply batch.
	SessionOp = session.Op
	// SessionDiff is one revision's placement diff (add/drop/cost).
	SessionDiff = session.Diff
)

// NewSessionManager builds a session manager. Close it before the
// engine on shutdown so watch streams end and sessions release.
func NewSessionManager(opts SessionManagerOptions) *SessionManager {
	return session.NewManager(opts)
}

// ServiceSessionResolver adapts a solver registry into the resolver a
// SessionManager needs, marking the incremental-capable heuristics
// (mg, cbu) and rejecting bound-only and multi-object solvers.
func ServiceSessionResolver(reg *SolverRegistry) session.ResolveFunc {
	return service.SessionResolver(reg)
}

// Multi-object placement (paper Section 8), re-exported: K objects
// placed jointly under shared server capacities. Through the engine the
// same models run as the "mo-greedy" and "lp-mo-rational" solvers with
// per-object vectors in Options.Objects.
type (
	// MultiObjectInstance couples a base instance with per-object
	// request and storage-cost vectors.
	MultiObjectInstance = multiobject.Instance
	// MultiObjectSolution holds one placement per object.
	MultiObjectSolution = multiobject.Solution
)

// SolveMultiObject places every object of mi jointly under the Multiple
// policy, greedily splitting the shared capacities.
func SolveMultiObject(mi *MultiObjectInstance) (*MultiObjectSolution, error) {
	return multiobject.GreedyMultiple(mi)
}

// MultiObjectLowerBound is the fully rational LP relaxation of the
// joint placement problem — a certified lower bound on any integral
// multi-object placement cost.
func MultiObjectLowerBound(mi *MultiObjectInstance) (float64, error) {
	return multiobject.RationalBound(mi)
}

// RenderTree writes the instance (and optionally a solution's placement)
// as an ASCII tree.
func RenderTree(w io.Writer, in *Instance, sol *Solution) error {
	return render.Tree(w, in, render.Options{Solution: sol, ShowQoS: true, ShowBandwidth: true})
}

// RenderSummary writes a per-replica utilization summary of a solution.
func RenderSummary(w io.Writer, in *Instance, sol *Solution) error {
	return render.Summary(w, in, sol)
}
