// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	Table 1    -> BenchmarkTable1_*          (complexity: polynomial vs exponential)
//	Figures 1-5 -> BenchmarkFig0*_*          (Section 3 gap instances)
//	Figure 6   -> BenchmarkFig06_WorkedExample
//	Figures 7-8 -> BenchmarkFig07/08_*       (NP-hardness gadgets)
//	Figures 9-12 -> BenchmarkFig09..12_*     (Section 7 campaign slices)
//
// Quality metrics (success rates, relative costs) are attached to the
// campaign benchmarks via ReportMetric so the paper's series can be read
// straight from `go test -bench`.
package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	replica "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/heuristics"
	"repro/internal/lpbound"
	"repro/internal/optimize"
	"repro/internal/reduction"
	"repro/internal/service"
)

// --- Table 1: complexity of the six problem variants ---

// BenchmarkTable1_MultipleHomogeneous measures the polynomial optimal
// algorithm (Theorem 1) across sizes; time should grow polynomially and
// the reported allocations are exactly the returned Solution (the solver
// scratch is pooled).
func BenchmarkTable1_MultipleHomogeneous(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		in := gen.Instance(gen.Config{Internal: size, Clients: 2 * size, Lambda: 0.5, UnitCosts: true}, 42)
		b.Run(sizeName(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.MultipleHomogeneous(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1_ClosestHomogeneous measures the polynomial Closest
// solver across sizes.
func BenchmarkTable1_ClosestHomogeneous(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		in := gen.Instance(gen.Config{Internal: size, Clients: 2 * size, Lambda: 0.3, UnitCosts: true}, 42)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exact.ClosestHomogeneous(in); err != nil && err != exact.ErrNoSolution {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1_UpwardsExponential shows the NP-hard cell: brute force
// over the Upwards policy doubles per extra node.
func BenchmarkTable1_UpwardsExponential(b *testing.B) {
	for _, size := range []int{8, 10, 12} {
		in := gen.Instance(gen.Config{Internal: size, Clients: size, Lambda: 0.5, UnitCosts: true}, 7)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = exact.BruteForce(context.Background(), in, core.Upwards)
			}
		})
	}
}

// --- Figures 1-5: the Section 3 gap constructions ---

// BenchmarkFig02_UpwardsVsClosest regenerates the Figure 2 gap: the
// Upwards/Closest replica ratio is reported as a metric (paper: 3 vs n+2).
func BenchmarkFig02_UpwardsVsClosest(b *testing.B) {
	const n = 3
	in := core.Figure2(n)
	var up, cl int
	for i := 0; i < b.N; i++ {
		u, err := exact.BruteForce(context.Background(), in, core.Upwards)
		if err != nil {
			b.Fatal(err)
		}
		c, err := exact.ClosestHomogeneous(in)
		if err != nil {
			b.Fatal(err)
		}
		up, cl = u.ReplicaCount(), c.ReplicaCount()
	}
	b.ReportMetric(float64(up), "upwards_replicas")
	b.ReportMetric(float64(cl), "closest_replicas")
}

// BenchmarkFig03_MultipleVsUpwards regenerates the Figure 3 factor-2 gap.
func BenchmarkFig03_MultipleVsUpwards(b *testing.B) {
	const n = 3
	in := core.Figure3(n)
	var mu, up int
	for i := 0; i < b.N; i++ {
		m, err := exact.MultipleHomogeneous(in)
		if err != nil {
			b.Fatal(err)
		}
		u, err := exact.BruteForce(context.Background(), in, core.Upwards)
		if err != nil {
			b.Fatal(err)
		}
		mu, up = m.ReplicaCount(), u.ReplicaCount()
	}
	b.ReportMetric(float64(mu), "multiple_replicas")
	b.ReportMetric(float64(up), "upwards_replicas")
}

// BenchmarkFig04_HeterogeneousGap regenerates the Figure 4 unbounded gap.
func BenchmarkFig04_HeterogeneousGap(b *testing.B) {
	in := core.Figure4(5, 20)
	var mu, up int64
	for i := 0; i < b.N; i++ {
		m, err := exact.BruteForce(context.Background(), in, core.Multiple)
		if err != nil {
			b.Fatal(err)
		}
		u, err := exact.BruteForce(context.Background(), in, core.Upwards)
		if err != nil {
			b.Fatal(err)
		}
		mu, up = m.StorageCost(in), u.StorageCost(in)
	}
	b.ReportMetric(float64(up)/float64(mu), "cost_ratio")
}

// BenchmarkFig05_TrivialBoundGap regenerates the Figure 5 gap between the
// optimum and ⌈Σr/W⌉.
func BenchmarkFig05_TrivialBoundGap(b *testing.B) {
	in := core.Figure5(4, 8)
	var opt int
	for i := 0; i < b.N; i++ {
		m, err := exact.MultipleHomogeneous(in)
		if err != nil {
			b.Fatal(err)
		}
		opt = m.ReplicaCount()
	}
	b.ReportMetric(float64(opt)/float64(in.TrivialLowerBound()), "optimum_over_bound")
}

// BenchmarkFig06_WorkedExample runs the three-pass optimal algorithm on
// the Figure 6 network.
func BenchmarkFig06_WorkedExample(b *testing.B) {
	in, _ := core.Figure6()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MultipleHomogeneous(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 7-8: NP-hardness gadget construction + solving ---

func BenchmarkFig07_ThreePartitionGadget(b *testing.B) {
	p, err := reduction.NewThreePartition([]int64{10, 11, 12, 10, 10, 13, 9, 11, 13})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g := reduction.BuildUpwards(p)
		if _, err := exact.BruteForce(context.Background(), g.Instance, core.Upwards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08_TwoPartitionGadget(b *testing.B) {
	p, err := reduction.NewTwoPartition([]int64{3, 1, 1, 2, 2, 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g := reduction.BuildCost(p)
		if _, err := exact.BruteForce(context.Background(), g.Instance, core.Multiple); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 9-12: the Section 7 campaign ---

// campaignSlice runs a reduced campaign (3 λ values, few trees) and
// reports the figure's headline series as metrics. The full-size series
// are regenerated by cmd/rpexp.
func campaignSlice(b *testing.B, hetero bool) *experiments.Results {
	b.Helper()
	var res *experiments.Results
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(experiments.Config{
			Heterogeneous:  hetero,
			Lambdas:        []float64{0.2, 0.5, 0.8},
			TreesPerLambda: 5,
			MinSize:        15,
			MaxSize:        45,
			Seed:           11,
			BoundNodes:     25,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

func BenchmarkFig09_HomogeneousSuccess(b *testing.B) {
	res := campaignSlice(b, false)
	for _, row := range res.Rows {
		suffix := lambdaName(row.Lambda)
		b.ReportMetric(float64(row.Success["MG"])/float64(row.Trees), "success_MG_"+suffix)
		b.ReportMetric(float64(row.Success["CTDA"])/float64(row.Trees), "success_CTDA_"+suffix)
	}
}

func BenchmarkFig10_HomogeneousRelativeCost(b *testing.B) {
	res := campaignSlice(b, false)
	for _, row := range res.Rows {
		b.ReportMetric(row.RelCost["MB"], "rcost_MB_"+lambdaName(row.Lambda))
	}
}

func BenchmarkFig11_HeterogeneousSuccess(b *testing.B) {
	res := campaignSlice(b, true)
	for _, row := range res.Rows {
		suffix := lambdaName(row.Lambda)
		b.ReportMetric(float64(row.Success["MG"])/float64(row.Trees), "success_MG_"+suffix)
		b.ReportMetric(float64(row.Success["CTDA"])/float64(row.Trees), "success_CTDA_"+suffix)
	}
}

func BenchmarkFig12_HeterogeneousRelativeCost(b *testing.B) {
	res := campaignSlice(b, true)
	for _, row := range res.Rows {
		b.ReportMetric(row.RelCost["MB"], "rcost_MB_"+lambdaName(row.Lambda))
	}
}

// --- Heuristic micro-benchmarks (Section 6 complexity: O(s²)) ---

func BenchmarkHeuristics(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 100, Clients: 200, Lambda: 0.4, Heterogeneous: true}, 5)
	for _, h := range heuristics.All {
		h := h
		b.Run(h.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = h.Run(in)
			}
		})
	}
	b.Run("MB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = heuristics.MB(in)
		}
	})
}

// --- Lower-bound machinery ---

func BenchmarkLPBound_Rational(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 20, Clients: 40, Lambda: 0.5}, 3)
	for i := 0; i < b.N; i++ {
		if _, err := lpbound.Rational(in, core.Multiple); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPBound_Refined(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 20, Clients: 40, Lambda: 0.5}, 3)
	var seedCost float64
	if sol, err := heuristics.MB(in); err == nil {
		seedCost = float64(sol.StorageCost(in))
	}
	for i := 0; i < b.N; i++ {
		if _, err := lpbound.Refined(context.Background(), in, core.Multiple,
			lpbound.Options{MaxNodes: 50, Incumbent: seedCost}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblation_DeleteOrder contrasts MTD (largest-client-first
// deletion) with MBU (smallest-first): success over a batch is reported
// as a metric, isolating the effect of the delete order + traversal.
func BenchmarkAblation_DeleteOrder(b *testing.B) {
	insts := gen.Batch(gen.Config{Internal: 20, Clients: 40, Lambda: 0.45}, 9, 20)
	var mtd, mbu int
	for i := 0; i < b.N; i++ {
		mtd, mbu = 0, 0
		for _, in := range insts {
			if _, err := heuristics.MTD(in); err == nil {
				mtd++
			}
			if _, err := heuristics.MBU(in); err == nil {
				mbu++
			}
		}
	}
	b.ReportMetric(float64(mtd)/float64(len(insts)), "success_MTD")
	b.ReportMetric(float64(mbu)/float64(len(insts)), "success_MBU")
}

// BenchmarkAblation_IncumbentSeeding shows the effect of seeding the
// branch-and-bound with a heuristic incumbent.
func BenchmarkAblation_IncumbentSeeding(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 15, Clients: 30, Lambda: 0.5}, 21)
	sol, err := heuristics.MB(in)
	if err != nil {
		b.Skip("instance infeasible")
	}
	seed := float64(sol.StorageCost(in))
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lpbound.Refined(context.Background(), in, core.Multiple,
				lpbound.Options{MaxNodes: 200, Incumbent: seed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unseeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lpbound.Refined(context.Background(), in, core.Multiple,
				lpbound.Options{MaxNodes: 200}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Facade sanity (keeps the public API exercised under bench) ---

func BenchmarkFacadeEndToEnd(b *testing.B) {
	in := replica.Generate(replica.GenConfig{Internal: 30, Clients: 60, Lambda: 0.4, UnitCosts: true}, 17)
	for i := 0; i < b.N; i++ {
		sol, err := replica.OptimalMultipleHomogeneous(in)
		if err != nil {
			b.Fatal(err)
		}
		if err := sol.Validate(in, replica.Multiple); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving subsystem (internal/service, cmd/rpserve) ---

// BenchmarkEngineSolve contrasts a cold solve (cache bypassed) with a
// cached one on the same instance: the cached path is the hot-traffic
// case the service is built for.
func BenchmarkEngineSolve(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 50, Clients: 100, Lambda: 0.4, UnitCosts: true}, 13)
	e := service.NewEngine(service.EngineOptions{})
	defer closeEngine(b, e)
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Solve(ctx, service.Request{
				Instance: in, Solver: "mb", Options: service.Options{NoCache: true},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		req := service.Request{Instance: in, Solver: "mb"}
		if _, err := e.Solve(ctx, req); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineThroughput drives parallel mixed-solver requests over a
// pool of distinct instances — the serving hot path with a realistic
// hit/miss mix — and reports the end-of-run cache hit rate.
func BenchmarkEngineThroughput(b *testing.B) {
	insts := gen.Batch(gen.Config{Internal: 30, Clients: 60, Lambda: 0.4, UnitCosts: true}, 29, 16)
	solvers := []string{"mb", "optimal", "closest-optimal", "mg", "ctda", "ubcf"}
	e := service.NewEngine(service.EngineOptions{})
	defer closeEngine(b, e)
	ctx := context.Background()
	var i atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := int(i.Add(1))
			req := service.Request{
				Instance: insts[n%len(insts)],
				Solver:   solvers[n%len(solvers)],
			}
			if _, err := e.Solve(ctx, req); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
	st := e.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Requests), "hit_rate")
	}
}

// BenchmarkEngineSolveBatch measures the batch path's amortization: 64
// request-vector variations of one topology, solved as one POST /v1/batch
// (topology decoded and preprocessed once, results streamed as NDJSON)
// versus the equivalent loop of single POST /v1/solve requests, each of
// which re-ships, re-decodes and re-validates the full instance. Both
// paths bypass the solution cache so the comparison measures transport,
// preprocessing and computation, not memoization. On multicore hosts the
// batch additionally fans its variations across the worker pool.
func BenchmarkEngineSolveBatch(b *testing.B) {
	const variations = 64
	in := gen.Instance(gen.Config{Internal: 100, Clients: 200, Lambda: 0.4, UnitCosts: true}, 31)
	vars := make([]service.BatchVariation, variations)
	for i := range vars {
		r := append([]int64(nil), in.R...)
		for _, c := range in.Tree.Clients() {
			r[c] += int64(i % 7)
		}
		vars[i] = service.BatchVariation{R: r}
	}

	e := service.NewEngine(service.EngineOptions{})
	defer closeEngine(b, e)
	srv := httptest.NewServer(service.NewHandler(e))
	defer srv.Close()

	// Pre-marshal every request body: both paths reuse their bytes, so
	// the measured difference is server-side decode + preprocess + solve
	// + transport, not client-side encoding.
	batchBody, err := json.Marshal(map[string]any{
		"topology": map[string]any{
			"parents":   in.Tree.Parents(),
			"is_client": in.Tree.ClientFlags(),
		},
		"solver":     "mg",
		"options":    map[string]any{"no_cache": true},
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	})
	if err != nil {
		b.Fatal(err)
	}
	solveBodies := make([][]byte, variations)
	for i, v := range vars {
		inst := *in
		inst.R = v.R
		solveBodies[i], err = json.Marshal(map[string]any{
			"instance": &inst,
			"solver":   "mg",
			"options":  map[string]any{"no_cache": true},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	post := func(b *testing.B, path string, body []byte) []byte {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d: %s", path, resp.StatusCode, data)
		}
		return data
	}

	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := post(b, "/v1/batch", batchBody)
			if n := bytes.Count(out, []byte("\n")); n != variations+1 {
				b.Fatalf("batch stream has %d lines, want %d", n, variations+1)
			}
		}
	})
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, body := range solveBodies {
				post(b, "/v1/solve", body)
			}
		}
	})
}

func closeEngine(b *testing.B, e *service.Engine) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "s=big"
	default:
		return "s=" + itoa(n)
	}
}

func lambdaName(l float64) string {
	return "l" + itoa(int(l*10))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Future-work campaigns (Section 10, implemented as extensions) ---

// BenchmarkExtQoSCampaign runs a slice of the QoS sweep and reports the
// Multiple-vs-Closest success separation as metrics.
func BenchmarkExtQoSCampaign(b *testing.B) {
	var res *experiments.QoSResults
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunQoS(experiments.QoSConfig{
			Ranges:        []int{0, 3},
			TreesPerRange: 6,
			MinSize:       15,
			MaxSize:       45,
			Seed:          4,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.Success["MG-QoS"])/float64(last.Trees), "success_MGQoS_q3")
	b.ReportMetric(float64(last.Success["CTDA-QoS"])/float64(last.Trees), "success_CTDAQoS_q3")
}

// BenchmarkExtBandwidthCampaign runs a slice of the bandwidth sweep.
func BenchmarkExtBandwidthCampaign(b *testing.B) {
	var res *experiments.BWResults
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBW(experiments.BWConfig{
			Factors:        []float64{0, 0.4},
			TreesPerFactor: 6,
			MinSize:        15,
			MaxSize:        45,
			Seed:           4,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.Success["MG-BW"])/float64(last.Trees), "success_MGBW_f04")
	b.ReportMetric(float64(last.Success["CTDA-BW"])/float64(last.Trees), "success_CTDABW_f04")
}

// BenchmarkHeuristicScaling verifies the Section 6 complexity claim
// (worst-case quadratic) empirically: MB across growing sizes.
func BenchmarkHeuristicScaling(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		in := gen.Instance(gen.Config{Internal: size, Clients: 2 * size, Lambda: 0.4}, 5)
		b.Run(sizeName(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = heuristics.MB(in)
			}
		})
	}
}

// BenchmarkOptimizeLocalSearch measures the Section 8.2 combined-objective
// local search.
func BenchmarkOptimizeLocalSearch(b *testing.B) {
	in := gen.Instance(gen.Config{Internal: 20, Clients: 40, Lambda: 0.4, UnitCosts: true}, 23)
	start, err := heuristics.MG(in)
	if err != nil {
		b.Skip("infeasible")
	}
	model := core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 1}
	for i := 0; i < b.N; i++ {
		if _, err := optimize.Improve(in, start, optimize.Options{Model: model}); err != nil {
			b.Fatal(err)
		}
	}
}
