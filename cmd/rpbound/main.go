// Command rpbound computes LP-based lower bounds on the optimal replica
// cost of an instance (Section 5.3 / 7.1).
//
// Usage:
//
//	rpbound -in tree.json                       # both bounds, Multiple
//	rpbound -in tree.json -policy Upwards -nodes 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lpbound"
)

func main() {
	var (
		inFile = flag.String("in", "", "instance file (JSON; required)")
		policy = flag.String("policy", "Multiple", "policy: Closest, Upwards or Multiple")
		nodes  = flag.Int("nodes", 400, "branch-and-bound node budget for the refined bound")
	)
	flag.Parse()
	if *inFile == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*inFile)
	if err != nil {
		fatalf("%v", err)
	}
	in, err := core.ReadInstance(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	p, ok := core.ParsePolicy(*policy)
	if !ok {
		fatalf("unknown policy %q", *policy)
	}

	rat, err := lpbound.Rational(in, p)
	if errors.Is(err, lpbound.ErrInfeasible) {
		fmt.Println("rational bound:  instance infeasible (LP relaxation)")
		return
	}
	if err != nil {
		fatalf("rational: %v", err)
	}
	fmt.Printf("rational bound:  %.4f\n", rat)

	ref, err := lpbound.Refined(context.Background(), in, p, lpbound.Options{MaxNodes: *nodes})
	if err != nil {
		fatalf("refined: %v", err)
	}
	kind := "exact mixed optimum"
	if !ref.Exact {
		kind = fmt.Sprintf("truncated after %d nodes (still a valid bound)", ref.Nodes)
	}
	fmt.Printf("refined bound:   %.4f  (%s)\n", ref.Value, kind)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpbound: "+format+"\n", args...)
	os.Exit(1)
}
