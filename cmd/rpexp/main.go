// Command rpexp runs the Section 7 simulation campaign and prints the
// series behind Figures 9-12: percentage of success and relative cost per
// heuristic and per load factor λ.
//
// Usage:
//
//	rpexp                          # homogeneous + heterogeneous, defaults
//	rpexp -case homo -trees 30 -max 120
//	rpexp -csv results.csv         # machine-readable long-form output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		which   = flag.String("case", "both", "campaign: homo, hetero, qos, bw, both or all")
		trees   = flag.Int("trees", 30, "trees per lambda")
		minSize = flag.Int("min", 15, "minimum problem size s = |C|+|N|")
		maxSize = flag.Int("max", 120, "maximum problem size")
		seed    = flag.Int64("seed", 1, "random seed")
		budget  = flag.Int("bound-nodes", 60, "branch-and-bound budget per tree")
		csvFile = flag.String("csv", "", "also write long-form CSV to this file")
	)
	flag.Parse()

	var csv *os.File
	if *csvFile != "" {
		f, err := os.Create(*csvFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		csv = f
	}

	runOne := func(hetero bool) {
		label, figs := "Homogeneous", "Figures 9 & 10"
		if hetero {
			label, figs = "Heterogeneous", "Figures 11 & 12"
		}
		res, err := experiments.Run(experiments.Config{
			Heterogeneous:  hetero,
			TreesPerLambda: *trees,
			MinSize:        *minSize,
			MaxSize:        *maxSize,
			Seed:           *seed,
			BoundNodes:     *budget,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("=== %s case (%s) ===\n\n", label, figs)
		fmt.Println("Percentage of success:")
		fmt.Println(res.SuccessTable())
		fmt.Println("Relative cost (lower bound / heuristic cost, failures count 0):")
		fmt.Println(res.RelCostTable())
		if csv != nil {
			if err := res.WriteCSV(csv); err != nil {
				fatalf("csv: %v", err)
			}
		}
	}

	runQoS := func() {
		res, err := experiments.RunQoS(experiments.QoSConfig{
			TreesPerRange: *trees,
			MinSize:       *minSize,
			MaxSize:       *maxSize,
			Seed:          *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println("=== QoS campaign (extension: Section 10 future work) ===")
		fmt.Println()
		fmt.Println("Percentage of success under tightening QoS (q ~ U[1,range]):")
		fmt.Println(res.Table())
	}

	runBW := func() {
		res, err := experiments.RunBW(experiments.BWConfig{
			TreesPerFactor: *trees,
			MinSize:        *minSize,
			MaxSize:        *maxSize,
			Seed:           *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println("=== Bandwidth campaign (extension: Section 10 future work) ===")
		fmt.Println()
		fmt.Println("Percentage of success under tightening link bandwidth:")
		fmt.Println(res.Table())
	}

	switch *which {
	case "homo":
		runOne(false)
	case "hetero":
		runOne(true)
	case "qos":
		runQoS()
	case "bw":
		runBW()
	case "both":
		runOne(false)
		runOne(true)
	case "all":
		runOne(false)
		runOne(true)
		runQoS()
		runBW()
	default:
		fatalf("unknown -case %q", *which)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpexp: "+format+"\n", args...)
	os.Exit(1)
}
