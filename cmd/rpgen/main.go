// Command rpgen generates random Replica Placement instances as JSON.
//
// Usage:
//
//	rpgen -nodes 20 -clients 40 -lambda 0.5 -seed 7 -o tree.json
//	rpgen -hetero -qos 3 -bw 0.8            # constrained heterogeneous
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 10, "number of internal nodes (candidate servers)")
		clients = flag.Int("clients", 0, "number of clients (default: equal to -nodes)")
		lambda  = flag.Float64("lambda", 0.5, "target load factor Σr/ΣW")
		hetero  = flag.Bool("hetero", false, "heterogeneous capacities (1:4 spread)")
		unit    = flag.Bool("unit-costs", false, "storage cost 1 per node (Replica Counting) instead of s_j = W_j")
		qos     = flag.Int("qos", 0, "per-client QoS hop bound drawn from [1,N] (0 disables)")
		bw      = flag.Float64("bw", 0, "bandwidth factor: link caps at factor x subtree traffic (0 disables)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	in := gen.Instance(gen.Config{
		Internal:      *nodes,
		Clients:       *clients,
		Lambda:        *lambda,
		Heterogeneous: *hetero,
		UnitCosts:     *unit,
		QoSRange:      *qos,
		BWFactor:      *bw,
	}, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if _, err := in.WriteTo(w); err != nil {
		fatalf("writing instance: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %s load=%.3f totalR=%d totalW=%d\n",
		in.Tree, in.Load(), in.TotalRequests(), in.TotalCapacity())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpgen: "+format+"\n", args...)
	os.Exit(1)
}
