// Command rpworker runs a placement worker shard: the solve surface of
// rpserve (/v1/solve, /v1/bound, /v1/batch, /v1/generate, /v1/campaign)
// plus the /v1/worker/ping liveness probe a coordinator's shard pool
// polls, and nothing else — no async job manager, no shard pool of its
// own. A coordinator (rpserve -shards) fans solves, sharded campaign
// rows and batch chunks out to a fleet of these.
//
// Usage:
//
//	rpworker -addr :8081 -workers 8
//	rpworker -addr :8082 -workers 8
//	rpserve  -addr :8080 -shards localhost:8081,localhost:8082 -jobs-dir ./jobs
//
// or, with dynamic membership, let the workers join the pool themselves:
//
//	rpserve  -addr :8080 -coordinator -jobs-dir ./jobs
//	rpworker -addr :8081 -register http://localhost:8080
//	rpworker -addr :8082 -register http://localhost:8080
//
// -register POSTs /v1/cluster/shards at startup, re-registers on a
// heartbeat (-register-interval) so a restarted coordinator relearns
// the worker, and deregisters on graceful shutdown. The advertised
// address defaults from -addr; set -advertise when the coordinator
// reaches this worker under a different name. The shard's placement
// weight is discovered from /v1/worker/ping (the solver goroutine
// count), so a big worker automatically takes a proportionally bigger
// share of cluster work.
//
// Inline campaign streams are unlimited here (a worker is dedicated
// capacity — the coordinator's pool is what bounds per-shard traffic),
// unlike rpserve's public default of 2.
//
// SIGINT/SIGTERM drain gracefully within -drain. A coordinator treats a
// draining worker like a dead one: in-flight work fails over to the
// remaining shards and the circuit breaker keeps traffic away until the
// worker returns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/wire"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8081", "listen address")
		workers     = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "job queue depth before backpressure (0 = 4x workers)")
		cache       = flag.Int("cache", 4096, "cached results (negative disables retention)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "approximate cache footprint limit in bytes (0 = unlimited)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "cached result lifetime (0 = never expires)")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		register    = flag.String("register", "", "coordinator URL to self-register with (POST /v1/cluster/shards + heartbeat)")
		advertise   = flag.String("advertise", "", "address the coordinator dials back (default derived from -addr)")
		regEvery    = flag.Duration("register-interval", 10*time.Second, "self-registration heartbeat period")
		clusterSec  = flag.String("cluster-secret", "", "shared secret presented when self-registering (must match the coordinator's -cluster-secret)")
		wireOn      = flag.Bool("wire", true, "serve the binary rp-wire/1 transport on GET /v1/wire")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowReq     = flag.Duration("slow-request", 0, "log requests slower than this at warn level (0 = disabled)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests recording span traces (slow requests are always retained)")
		traceBuffer = flag.Int("trace-buffer", obs.DefaultSpanCapacity, "spans held in the in-process flight recorder (0 = default, negative disables tracing)")
		eventBuffer = flag.Int("event-buffer", obs.DefaultEventCapacity, "events held in the in-process journal at /debug/events (0 = default, negative disables)")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fatalf("%v", err)
	}
	logger = logger.With("daemon", "rpworker")

	engine := service.NewEngine(service.EngineOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		CacheMaxBytes:  *cacheBytes,
		CacheTTL:       *cacheTTL,
		DefaultTimeout: *timeout,
		Logger:         logger,
	})
	// No job manager: /v1/jobs answers 501 pointing at the coordinator.
	// Campaign streams are unbounded — the pool that feeds this worker
	// is the admission controller.
	var spans *obs.SpanStore
	if *traceBuffer >= 0 {
		spans = obs.NewSpanStore(*traceBuffer)
	}
	var events *obs.EventRing
	if *eventBuffer >= 0 {
		events = obs.NewEventRing(*eventBuffer, logger)
	}
	handlerOpts := service.HandlerOptions{
		MaxInlineCampaigns: -1,
		Logger:             logger,
		SlowRequest:        *slowReq,
		Spans:              spans,
		TraceSample:        *traceSample,
		Events:             events,
	}
	var wireSrv *wire.Server
	if *wireOn {
		wireSrv = wire.NewServer(engine, logger)
		wireSrv.Spans = spans
		handlerOpts.Wire = wireSrv
	}
	var handler http.Handler = service.NewHandlerOpts(engine, handlerOpts)
	if *pprofOn {
		root := http.NewServeMux()
		root.Handle("/", handler)
		obs.RegisterPprof(root)
		handler = root
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelError),
	}

	var registrar *cluster.Registrar
	if *register != "" {
		adv := *advertise
		if adv == "" {
			adv = cluster.DefaultAdvertise(*addr)
		}
		registrar = &cluster.Registrar{
			Coordinator: *register,
			Advertise:   adv,
			Secret:      *clusterSec,
			Interval:    *regEvery,
			Logger:      logger,
		}
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", engine.Stats().Workers)
		if registrar != nil {
			if err := registrar.Start(); err != nil {
				errc <- err
				return
			}
		}
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String(), "drain", drain.String())
	case err := <-errc:
		fatalf("%v", err)
	}

	// Leave the pool first: the coordinator stops handing this worker
	// new rows while the in-flight ones drain below.
	if registrar != nil {
		registrar.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	// Hijacked wire connections are invisible to srv.Shutdown: close
	// them explicitly so the coordinator fails over instead of hanging.
	if wireSrv != nil {
		wireSrv.Close()
	}
	if err := engine.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("engine shutdown", "error", err)
	}
	logger.Info("bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpworker: "+format+"\n", args...)
	os.Exit(1)
}
