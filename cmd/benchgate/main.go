// Command benchgate compares benchmark results against a committed
// baseline and fails when gated benchmarks regress beyond a threshold.
//
//	benchgate -baseline BENCH_baseline.json -current bench.txt -max-regress 20
//
// Both inputs may be either the JSON array the CI bench lane renders
// ([{"commit": ..., "name": ..., "iterations": ..., "ns_per_op": ...}])
// or raw `go test -bench` text; the format is auto-detected. Names are
// normalized by stripping the trailing -N GOMAXPROCS suffix, and when a
// benchmark appears more than once (-count > 1) the fastest run wins —
// scheduling noise only ever slows a run down, so best-of is the
// stable estimator.
//
// Only benchmarks matching -match (default: the RouteBatchInline and
// PoolSolveBatch families plus the 1e3–1e5-leaf SessionApplyDelta
// sizes) are gated; everything else is informational.
// A gated benchmark present in the baseline but missing from the
// current run is an error — a silently deleted benchmark must not
// disable its own gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// gomaxprocsSuffix matches the -N that `go test` appends to benchmark
// names; baseline and current runs may come from machines with
// different core counts, so it never takes part in matching.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// load reads a results file in either supported format and returns the
// best (minimum) ns/op per normalized benchmark name.
func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &results); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else if results, err = parseBenchText(raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	best := make(map[string]float64, len(results))
	for _, r := range results {
		name := normalize(r.Name)
		if name == "" || r.NsPerOp <= 0 {
			continue
		}
		if cur, ok := best[name]; !ok || r.NsPerOp < cur {
			best[name] = r.NsPerOp
		}
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return best, nil
}

// parseBenchText extracts "BenchmarkName  iterations  ns/op" lines from
// raw `go test -bench` output, tolerating the extra metric columns that
// -benchmem and custom ReportMetric calls append.
func parseBenchText(raw []byte) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			out = append(out, result{Name: fields[0], NsPerOp: ns})
			break
		}
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results (JSON or go test -bench text)")
	currentPath := flag.String("current", "", "current results to gate (JSON or go test -bench text)")
	maxRegress := flag.Float64("max-regress", 20, "maximum allowed ns/op regression, percent")
	match := flag.String("match", `^Benchmark(RouteBatchInline|PoolSolveBatch)($|/)|^BenchmarkSessionApplyDelta/leaves=(1000|10000|100000)$`, "regexp selecting the gated benchmarks")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	gated, err := regexp.Compile(*match)
	if err != nil {
		fatal("bad -match regexp: %v", err)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal("loading baseline: %v", err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal("loading current results: %v", err)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if gated.MatchString(name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fatal("baseline %s has no benchmarks matching %q — the gate would be a no-op", *baselinePath, *match)
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-55s %15s %15s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-55s %15.0f %15s %9s\n", name, base, "missing", "-")
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the current run", name))
			continue
		}
		delta := (cur - base) / base * 100
		fmt.Printf("%-55s %15.0f %15.0f %+8.1f%%\n", name, base, cur, delta)
		if delta > *maxRegress {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, limit %+.1f%%)", name, base, cur, delta, *maxRegress))
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d gated benchmark(s) regressed beyond %.1f%%:\n", len(failures), *maxRegress)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d gated benchmark(s) within %.1f%% of baseline\n", len(names), *maxRegress)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
