// Command rpsolve solves a Replica Placement instance (JSON, as produced
// by rpgen) with a chosen solver and prints the placement and its cost.
//
// Usage:
//
//	rpsolve -in tree.json -solver MB                 # MixedBest heuristic
//	rpsolve -in tree.json -solver optimal            # Multiple/homogeneous optimum
//	rpsolve -in tree.json -solver brute -policy Upwards
//	rpsolve -in tree.json -solver all                # every heuristic, one line each
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/render"
)

func main() {
	var (
		inFile  = flag.String("in", "", "instance file (JSON; required)")
		solver  = flag.String("solver", "MB", "solver: a heuristic name (CTDA, CTDLF, CBU, UTD, UBCF, MTD, MBU, MG, MB), 'optimal', 'closest-optimal', 'brute' or 'all'")
		policy  = flag.String("policy", "Multiple", "policy for -solver brute: Closest, Upwards or Multiple")
		verbose = flag.Bool("v", false, "print the full assignment, not just the replica set")
		outFile = flag.String("o", "", "write the solution as JSON to this file (single-solver modes only)")
		trace   = flag.Bool("trace", false, "with -solver optimal: print the pass-by-pass decision trace (Figure 6 style)")
	)
	flag.Parse()
	if *inFile == "" {
		fatalf("missing -in")
	}
	f, err := os.Open(*inFile)
	if err != nil {
		fatalf("%v", err)
	}
	in, err := core.ReadInstance(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	if *outFile != "" && strings.EqualFold(*solver, "all") {
		fatalf("-o cannot be combined with -solver all")
	}
	switch strings.ToLower(*solver) {
	case "all":
		for _, h := range heuristics.All {
			report(in, h.Name, h.Policy, *verbose, *outFile, func() (*core.Solution, error) { return h.Run(in) })
		}
		report(in, "MB", core.Multiple, *verbose, *outFile, func() (*core.Solution, error) { return heuristics.MB(in) })
	case "optimal":
		if *trace {
			tr, err := exact.MultipleHomogeneousTrace(in)
			if err != nil {
				fatalf("optimal: %v", err)
			}
			fmt.Print(tr)
		}
		report(in, "optimal(Multiple/homogeneous)", core.Multiple, *verbose, *outFile,
			func() (*core.Solution, error) { return exact.MultipleHomogeneous(in) })
	case "closest-optimal":
		report(in, "optimal(Closest/homogeneous)", core.Closest, *verbose, *outFile,
			func() (*core.Solution, error) { return exact.ClosestHomogeneous(in) })
	case "brute":
		p, ok := core.ParsePolicy(*policy)
		if !ok {
			fatalf("unknown policy %q", *policy)
		}
		report(in, "brute("+p.String()+")", p, *verbose, *outFile,
			func() (*core.Solution, error) { return exact.BruteForce(context.Background(), in, p) })
	default:
		h, ok := heuristicByFold(*solver)
		if !ok {
			fatalf("unknown solver %q", *solver)
		}
		report(in, h.Name, h.Policy, *verbose, *outFile, func() (*core.Solution, error) { return h.Run(in) })
	}
}

// heuristicByFold is heuristics.ByName with case-insensitive matching,
// so `-solver mb` and `-solver ctda` work like `-policy` already does.
func heuristicByFold(name string) (heuristics.Heuristic, bool) {
	if h, ok := heuristics.ByName(name); ok {
		return h, true
	}
	return heuristics.ByName(strings.ToUpper(name))
}

// report runs one solver, prints its one-line result, and optionally
// saves the solution as JSON to saveTo (empty disables saving).
func report(in *core.Instance, name string, p core.Policy, verbose bool, saveTo string, run func() (*core.Solution, error)) {
	sol, err := run()
	switch {
	case errors.Is(err, exact.ErrNoSolution) || errors.Is(err, heuristics.ErrNoSolution):
		fmt.Printf("%-12s no solution\n", name)
		return
	case err != nil:
		fatalf("%s: %v", name, err)
	}
	if verr := sol.Validate(in, p); verr != nil {
		fatalf("%s produced an invalid solution: %v", name, verr)
	}
	fmt.Printf("%-12s cost=%-8d replicas=%d %v\n", name, sol.StorageCost(in), sol.ReplicaCount(), sol.Replicas())
	if saveTo != "" {
		data, err := json.MarshalIndent(sol, "", "  ")
		if err != nil {
			fatalf("encoding solution: %v", err)
		}
		if err := os.WriteFile(saveTo, append(data, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", saveTo, err)
		}
	}
	if verbose {
		if err := render.Summary(os.Stdout, in, sol); err != nil {
			fatalf("rendering summary: %v", err)
		}
		if err := render.Tree(os.Stdout, in, render.Options{Solution: sol, ShowQoS: true, ShowBandwidth: true}); err != nil {
			fatalf("rendering tree: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpsolve: "+format+"\n", args...)
	os.Exit(1)
}
