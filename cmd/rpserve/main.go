// Command rpserve runs the replica-placement engine as a long-running
// HTTP daemon: concurrent solves over every registered solver (exact,
// heuristics, MixedBest, QoS/bandwidth variants), LP bounds, seeded
// instance generation, streamed experiment campaigns and persistent
// async campaign/batch jobs, with a keyed solution cache in front of
// the worker pool.
//
// Usage:
//
//	rpserve -addr :8080 -workers 8 -cache 4096 -timeout 60s \
//	        -jobs-dir /var/lib/rpserve/jobs -job-workers 2
//
// Endpoints (all JSON):
//
//	GET  /healthz      liveness + engine counters (incl. per-solver cache stats)
//	GET  /metrics      the same counters in Prometheus text format
//	GET  /v1/solvers   solver registry listing with cache counters
//	POST /v1/solve     {"instance": ..., "solver": "MB"}
//	POST /v1/bound     {"instance": ..., "solver": "refined", "policy": "Multiple"}
//	POST /v1/batch     {"topology": ..., "solver": ..., "base": ..., "variations": [...]}
//	                   (one tree, N parameter vectors; streams NDJSON results)
//	POST /v1/generate  {"config": {"Internal": 10, "Lambda": 0.5}, "seed": 7}
//	POST /v1/campaign  {"config": {"TreesPerLambda": 10}}   (streams NDJSON rows;
//	                   503 + Retry-After when its inline slots are saturated)
//	POST /v1/jobs      {"campaign": {...}} | {"batch": {...}}  (async, 202 + job id)
//	GET  /v1/jobs[/{id}[/result]] and DELETE /v1/jobs/{id}
//
// With -jobs-dir, jobs are persisted (manifest + append-only row log
// per job) and survive restarts: a job interrupted by shutdown resumes
// from its last completed row when the daemon comes back.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops,
// running jobs checkpoint (resumable on restart), and queued plus
// in-flight solves drain within -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "job queue depth before backpressure (0 = 4x workers)")
		cache      = flag.Int("cache", 4096, "cached results (negative disables retention)")
		cacheBytes = flag.Int64("cache-bytes", 0, "approximate cache footprint limit in bytes (0 = unlimited)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "cached result lifetime (0 = never expires)")
		timeout    = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		jobsDir    = flag.String("jobs-dir", "", "directory for persistent async jobs (empty = in-memory, jobs die with the process)")
		jobWorkers = flag.Int("job-workers", 2, "concurrently running async jobs")
		campaigns  = flag.Int("campaigns", 0, "concurrent inline /v1/campaign streams (0 = default 2, negative = unlimited)")
	)
	flag.Parse()

	engine := service.NewEngine(service.EngineOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		CacheMaxBytes:  *cacheBytes,
		CacheTTL:       *cacheTTL,
		DefaultTimeout: *timeout,
	})
	manager, err := service.NewJobsManager(engine, *jobsDir, *jobWorkers)
	if err != nil {
		fatalf("opening job store: %v", err)
	}
	if n := manager.Recovered(); n > 0 {
		log.Printf("rpserve: resuming %d unfinished job(s) from %s", n, *jobsDir)
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: service.NewHandlerOpts(engine, service.HandlerOptions{
			Jobs:               manager,
			MaxInlineCampaigns: *campaigns,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("rpserve: listening on %s (%d workers)", *addr, engine.Stats().Workers)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("rpserve: %v, draining for up to %s", sig, *drain)
	case err := <-errc:
		fatalf("%v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("rpserve: http shutdown: %v", err)
	}
	// Jobs first: running jobs checkpoint (interrupted, resumable on the
	// next start) and release their engine work before the engine pool
	// itself drains.
	if err := manager.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rpserve: jobs shutdown: %v", err)
	}
	if err := engine.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rpserve: engine shutdown: %v", err)
	}
	log.Printf("rpserve: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpserve: "+format+"\n", args...)
	os.Exit(1)
}
