// Command rpserve runs the replica-placement engine as a long-running
// HTTP daemon: concurrent solves over every registered solver (exact,
// heuristics, MixedBest, QoS/bandwidth variants), LP bounds, seeded
// instance generation, streamed experiment campaigns and persistent
// async campaign/batch jobs, with a keyed solution cache in front of
// the worker pool.
//
// Usage:
//
//	rpserve -addr :8080 -workers 8 -cache 4096 -timeout 60s \
//	        -jobs-dir /var/lib/rpserve/jobs -job-workers 2 -job-ttl 24h
//
// Cluster modes:
//
//	rpserve -worker -addr :8081 [-register http://coord:8080]
//	    run as a worker shard: the solve surface plus /v1/worker/ping,
//	    no job manager, unbounded inline campaigns (the coordinator's
//	    pool is the admission controller). Equivalent to rpworker.
//	    With -register, the worker joins the coordinator's pool itself
//	    (POST /v1/cluster/shards), re-registers on a heartbeat, and
//	    deregisters on graceful shutdown.
//
//	rpserve -shards host:8081,host:8082 -jobs-dir ./jobs
//	rpserve -shards-file ./shards.txt -jobs-dir ./jobs
//	rpserve -coordinator -jobs-dir ./jobs
//	    run as a coordinator over worker shards: every solver gains an
//	    "<name>@remote" twin proxied through the shard pool (health
//	    probing, circuit breaking, bounded in-flight, weighted
//	    placement, failover), inline /v1/batch requests are fanned out
//	    over the shards (falling back to local execution when none can
//	    take them), and campaign/batch jobs are executed sharded — λ
//	    rows / variation indices are partitioned across the workers,
//	    merged into the same append-only row log, and byte-identical
//	    to a single-process run. If a worker dies mid-job, only its
//	    missing rows are resubmitted to the remaining shards.
//
//	    Membership is dynamic: besides the static -shards list, shards
//	    join/leave via POST/DELETE /v1/cluster/shards at runtime, and
//	    -shards-file ("addr [weight]" per line) is re-read on SIGHUP
//	    and every -shards-reload. -coordinator starts with an empty
//	    pool that self-registering workers fill.
//
// Endpoints (all JSON):
//
//	GET  /healthz      liveness + engine counters (+ per-shard health)
//	GET  /metrics      the same counters in Prometheus text format
//	GET  /v1/solvers   solver registry listing with cache counters
//	POST /v1/solve     {"instance": ..., "solver": "MB"}
//	POST /v1/bound     {"instance": ..., "solver": "refined", "policy": "Multiple"}
//	POST /v1/batch     {"topology": ..., "solver": ..., "base": ..., "variations": [...]}
//	                   (one tree, N parameter vectors; streams NDJSON results)
//	POST /v1/generate  {"config": {"Internal": 10, "Lambda": 0.5}, "seed": 7}
//	POST /v1/campaign  {"config": {"TreesPerLambda": 10}}   (streams NDJSON rows;
//	                   503 + Retry-After when its inline slots are saturated)
//	POST /v1/jobs      {"campaign": {...}} | {"batch": {...}}  (async, 202 + job id)
//	GET  /v1/jobs      list jobs (?limit=&after= paginates with a "next" cursor)
//	GET  /v1/jobs/{id}[/result] and DELETE /v1/jobs/{id}
//	GET  /v1/worker/ping  lightweight liveness probe for shard pools
//	GET  /v1/cluster/metrics  one merged Prometheus exposition for the
//	                   whole cluster (coordinator modes; every series
//	                   carries a shard label)
//	GET  /v1/alerts    SLO verdict, budgets, burn rates, firing alerts
//	GET  /debug/events cluster event journal (?type=&since=&limit=)
//
// With -jobs-dir, jobs are persisted (manifest + append-only row log
// per job) and survive restarts: a job interrupted by shutdown resumes
// from its last completed row when the daemon comes back. -job-ttl
// prunes finished jobs once they are older than the given age.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops,
// running jobs checkpoint (resumable on restart), and queued plus
// in-flight solves drain within -drain.
//
// Observability: logs are structured (-log-format text|json, -log-level
// debug|info|warn|error) and every request-scoped line carries the
// request's trace ID (X-RP-Trace-Id, generated when absent). Requests
// slower than -slow-request are logged at warn. -pprof mounts
// net/http/pprof under /debug/pprof/ (off by default).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/wire"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/session"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "job queue depth before backpressure (0 = 4x workers)")
		cache        = flag.Int("cache", 4096, "cached results (negative disables retention)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "approximate cache footprint limit in bytes (0 = unlimited)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "cached result lifetime (0 = never expires)")
		timeout      = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		drain        = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		jobsDir      = flag.String("jobs-dir", "", "directory for persistent async jobs (empty = in-memory, jobs die with the process)")
		jobWorkers   = flag.Int("job-workers", 2, "concurrently running async jobs")
		jobTTL       = flag.Duration("job-ttl", 0, "prune finished jobs older than this age (0 = keep until DELETE)")
		campaigns    = flag.Int("campaigns", 0, "concurrent inline /v1/campaign streams (0 = default 2, negative = unlimited)")
		worker       = flag.Bool("worker", false, "run as a worker shard: solve surface only, no jobs, unbounded campaigns")
		shards       = flag.String("shards", "", "comma-separated worker addresses (host:port); enables coordinator mode")
		shardsFile   = flag.String("shards-file", "", "file with one \"addr [weight]\" per line; re-read on SIGHUP and every -shards-reload; enables coordinator mode")
		shardsReload = flag.Duration("shards-reload", 30*time.Second, "periodic -shards-file reload interval (0 = SIGHUP only)")
		coordinator  = flag.Bool("coordinator", false, "coordinator mode with an initially empty pool (workers join via POST /v1/cluster/shards or -register)")
		shardConc    = flag.Int("shard-inflight", 0, "max in-flight requests per shard weight unit (0 = default 4)")
		shardExpire  = flag.Int("shard-expire", 0, "expire file-/API-registered shards after this many consecutive failed health probes (0 = never)")
		routeCache   = flag.Int("route-cache", 0, "routed batch rows memoized on the coordinator (0 = default 4096, negative disables)")
		routeCacheB  = flag.Int64("route-cache-bytes", 0, "approximate byte bound of the routed-row cache (0 = default 256 MiB, negative removes the bound)")
		clusterSec   = flag.String("cluster-secret", "", "shared secret: required on POST/DELETE /v1/cluster/shards here, and presented when self-registering (empty = open)")
		wireOn       = flag.Bool("wire", true, "speak the binary rp-wire/1 transport for cluster traffic (serve GET /v1/wire; dial it on shards)")
		register     = flag.String("register", "", "worker mode: coordinator URL to self-register with (heartbeat re-registers, graceful shutdown deregisters)")
		advertise    = flag.String("advertise", "", "worker mode: address the coordinator dials back (default derived from -addr)")
		registerInt  = flag.Duration("register-interval", 10*time.Second, "worker mode: self-registration heartbeat period")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowReq      = flag.Duration("slow-request", 0, "log requests slower than this at warn level (0 = disabled)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceSample  = flag.Float64("trace-sample", 1.0, "fraction of requests recording span traces (slow requests are always retained)")
		traceBuffer  = flag.Int("trace-buffer", obs.DefaultSpanCapacity, "spans held in the in-process flight recorder (0 = default, negative disables tracing)")
		eventBuffer  = flag.Int("event-buffer", obs.DefaultEventCapacity, "cluster events held in the in-process journal at /debug/events (0 = default, negative disables)")
		sessionsMax  = flag.Int("sessions", 0, "max live placement sessions under /v1/instances (0 = default 1024, negative disables sessions)")
		sessionTTL   = flag.Duration("session-ttl", 0, "expire placement sessions idle longer than this (0 = never; sessions with watchers don't expire)")
		sloAvail     = flag.Float64("slo-availability", 0, "availability objective as a success ratio, e.g. 0.999 (0 disables the availability SLO)")
		sloLatency   = flag.Duration("slo-latency-p99", 0, "latency objective: 99% of SLO-counted requests finish within this duration (0 disables the latency SLO)")
		sloWindow    = flag.Duration("slo-window", 6*time.Hour, "SLO error-budget window (also the longest burn-rate lookback)")
		federateInt  = flag.Duration("federate-interval", 5*time.Second, "coordinator mode: per-shard /metrics scrape period feeding GET /v1/cluster/metrics (negative disables federation)")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fatalf("%v", err)
	}
	logger = logger.With("daemon", "rpserve")

	// Control-plane state shared across the layers: the event journal
	// (membership, circuit, wire, job and alert transitions; served at
	// /debug/events) and the SLO burn-rate engine (fed by the request
	// middleware, surfaced via /v1/alerts, /metrics and the /healthz
	// verdict). Both are nil-safe everywhere they are handed to.
	var events *obs.EventRing
	if *eventBuffer >= 0 {
		events = obs.NewEventRing(*eventBuffer, logger)
	}
	slo := obs.NewSLO(obs.SLOOptions{
		Availability: *sloAvail,
		LatencyP99:   *sloLatency,
		Window:       *sloWindow,
		Events:       events,
	})

	coordMode := *shards != "" || *shardsFile != "" || *coordinator
	if *worker {
		if coordMode {
			fatalf("-worker and -shards/-shards-file/-coordinator are mutually exclusive")
		}
		// Fail loudly on flags a worker would silently drop: a worker has
		// no job manager, so persistent-job settings signal a daemon that
		// was meant to be a coordinator or standalone.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "jobs-dir", "job-workers", "job-ttl":
				fatalf("-worker serves no jobs; -%s is meaningless here", f.Name)
			case "sessions", "session-ttl":
				fatalf("-worker serves no placement sessions; -%s is meaningless here", f.Name)
			}
		})
	} else if *register != "" {
		fatalf("-register is a worker-mode flag; start this daemon with -worker (coordinators are joined, they don't join)")
	}

	// Coordinator mode: build the shard pool first — the registry grows
	// an @remote twin per solver and the job kinds become the sharded
	// ones, everything else is wired identically.
	var pool *cluster.Pool
	registry := service.NewRegistry()
	if coordMode {
		var addrs []string
		if *shards != "" {
			addrs = strings.Split(*shards, ",")
		}
		var err error
		pool, err = cluster.NewPool(addrs, cluster.PoolOptions{
			MaxInFlight:        *shardConc,
			ExpireAfter:        *shardExpire,
			DisableWire:        !*wireOn,
			RouteCacheSize:     *routeCache,
			RouteCacheMaxBytes: *routeCacheB,
			FederateInterval:   *federateInt,
			Events:             events,
			Logger:             logger,
		})
		if err != nil {
			fatalf("building shard pool: %v", err)
		}
		defer pool.Close()
		if *shardsFile != "" {
			if _, _, err := pool.SyncFromFile(*shardsFile); err != nil {
				fatalf("loading shards file: %v", err)
			}
			go reloadShardsLoop(pool, *shardsFile, *shardsReload, logger)
		}
		if err := cluster.RegisterRemote(registry, pool); err != nil {
			fatalf("registering remote solvers: %v", err)
		}
		pingCtx, pingCancel := context.WithTimeout(context.Background(), 5*time.Second)
		for addr, err := range pool.Ping(pingCtx) {
			if err != nil {
				logger.Warn("shard unreachable at startup; will keep probing", "shard", addr, "error", err)
			} else {
				logger.Info("shard up", "shard", addr)
			}
		}
		pingCancel()
	}

	engine := service.NewEngine(service.EngineOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		CacheMaxBytes:  *cacheBytes,
		CacheTTL:       *cacheTTL,
		DefaultTimeout: *timeout,
		Registry:       registry,
		Logger:         logger,
	})

	var spans *obs.SpanStore
	if *traceBuffer >= 0 {
		spans = obs.NewSpanStore(*traceBuffer)
	}
	handlerOpts := service.HandlerOptions{
		MaxInlineCampaigns: *campaigns,
		ClusterSecret:      *clusterSec,
		Logger:             logger,
		SlowRequest:        *slowReq,
		Spans:              spans,
		TraceSample:        *traceSample,
		SLO:                slo,
		Events:             events,
	}
	var wireSrv *wire.Server
	if *wireOn {
		wireSrv = wire.NewServer(engine, logger)
		wireSrv.Spans = spans
		handlerOpts.Wire = wireSrv
	}
	var manager *jobs.Manager
	if *worker {
		// A worker shard serves raw capacity: no job manager, and the
		// coordinator's pool — not a local slot count — bounds campaigns.
		handlerOpts.MaxInlineCampaigns = -1
		if *campaigns != 0 {
			handlerOpts.MaxInlineCampaigns = *campaigns
		}
	} else {
		var kinds []jobs.Kind // nil = the local pair
		if pool != nil {
			kinds = cluster.Kinds(engine, pool)
		}
		var err error
		manager, err = service.NewJobsManagerOpts(engine, service.JobsOptions{
			Dir:       *jobsDir,
			Workers:   *jobWorkers,
			RetainFor: *jobTTL,
			Kinds:     kinds,
			Logger:    logger,
			Spans:     spans,
			Events:    events,
		})
		if err != nil {
			fatalf("opening job store: %v", err)
		}
		if n := manager.Recovered(); n > 0 {
			logger.Info("resuming unfinished jobs", "count", n, "dir", *jobsDir)
		}
		handlerOpts.Jobs = manager
	}
	if pool != nil {
		handlerOpts.Cluster = pool
	}
	var sessionMgr *session.Manager
	if !*worker && *sessionsMax >= 0 {
		// Placement sessions live on daemons and coordinators; worker
		// shards serve stateless solve capacity only.
		sessionMgr = session.NewManager(session.Options{
			Resolve:     service.SessionResolver(engine.Registry()),
			MaxSessions: *sessionsMax,
			TTL:         *sessionTTL,
			Logger:      logger,
		})
		handlerOpts.Sessions = sessionMgr
	}

	var handler http.Handler = service.NewHandlerOpts(engine, handlerOpts)
	if *pprofOn {
		// An outer mux keeps pprof off the instrumented API mux (profile
		// downloads would drown the latency histograms) and far away from
		// http.DefaultServeMux.
		root := http.NewServeMux()
		root.Handle("/", handler)
		obs.RegisterPprof(root)
		handler = root
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// net/http's own complaints (TLS handshake noise, panics) flow
		// through the structured logger too, so json mode stays json.
		ErrorLog: slog.NewLogLogger(logger.Handler(), slog.LevelError),
	}

	var registrar *cluster.Registrar
	if *worker && *register != "" {
		adv := *advertise
		if adv == "" {
			adv = cluster.DefaultAdvertise(*addr)
		}
		registrar = &cluster.Registrar{
			Coordinator: *register,
			Advertise:   adv,
			Secret:      *clusterSec,
			Interval:    *registerInt,
			Logger:      logger,
		}
	}

	errc := make(chan error, 1)
	go func() {
		mode := "standalone"
		switch {
		case *worker:
			mode = "worker"
		case pool != nil:
			mode = fmt.Sprintf("coordinator over %d shard(s)", len(pool.Addrs()))
		}
		logger.Info("listening", "addr", *addr, "workers", engine.Stats().Workers, "mode", mode)
		if registrar != nil {
			if err := registrar.Start(); err != nil {
				errc <- err
				return
			}
		}
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String(), "drain", drain.String())
	case err := <-errc:
		fatalf("%v", err)
	}

	// Leave the cluster before the listener closes: the coordinator
	// stops handing this worker new rows while in-flight ones drain.
	if registrar != nil {
		registrar.Stop()
	}
	// Session watchers are long-lived streaming responses that would
	// otherwise pin connections for Shutdown's whole drain; closing the
	// manager first ends their streams cleanly.
	if sessionMgr != nil {
		sessionMgr.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	// Hijacked wire connections are invisible to srv.Shutdown: close
	// them explicitly so coordinators fail over instead of hanging.
	if wireSrv != nil {
		wireSrv.Close()
	}
	// Jobs first: running jobs checkpoint (interrupted, resumable on the
	// next start) and release their engine work before the engine pool
	// itself drains.
	if manager != nil {
		if err := manager.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("jobs shutdown", "error", err)
		}
	}
	if err := engine.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("engine shutdown", "error", err)
	}
	logger.Info("bye")
}

// reloadShardsLoop re-reads the shards file on SIGHUP and, when the
// interval is positive, periodically — the poor man's config watcher,
// good enough for a file that changes on operator action.
func reloadShardsLoop(pool *cluster.Pool, path string, every time.Duration, logger *slog.Logger) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	var tick <-chan time.Time
	if every > 0 {
		t := time.NewTicker(every)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-hup:
		case <-tick:
		}
		added, removed, err := pool.SyncFromFile(path)
		switch {
		case err != nil:
			logger.Warn("shards file reload failed", "path", path, "error", err)
		case added+removed > 0:
			logger.Info("shards file reloaded", "added", added, "removed", removed,
				"epoch", pool.Epoch(), "members", fmt.Sprintf("%v", pool.Addrs()))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpserve: "+format+"\n", args...)
	os.Exit(1)
}
