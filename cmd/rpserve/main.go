// Command rpserve runs the replica-placement engine as a long-running
// HTTP daemon: concurrent solves over every registered solver (exact,
// heuristics, MixedBest, QoS/bandwidth variants), LP bounds, seeded
// instance generation and streamed experiment campaigns, with a keyed
// solution cache in front of the worker pool.
//
// Usage:
//
//	rpserve -addr :8080 -workers 8 -cache 4096 -timeout 60s
//
// Endpoints (all JSON):
//
//	GET  /healthz      liveness + engine counters (incl. per-solver cache stats)
//	GET  /v1/solvers   solver registry listing with cache counters
//	POST /v1/solve     {"instance": ..., "solver": "MB"}
//	POST /v1/bound     {"instance": ..., "solver": "refined", "policy": "Multiple"}
//	POST /v1/batch     {"topology": ..., "solver": ..., "base": ..., "variations": [...]}
//	                   (one tree, N parameter vectors; streams NDJSON results)
//	POST /v1/generate  {"config": {"Internal": 10, "Lambda": 0.5}, "seed": 7}
//	POST /v1/campaign  {"config": {"TreesPerLambda": 10}}   (streams NDJSON rows)
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, and
// queued plus in-flight jobs drain within -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "job queue depth before backpressure (0 = 4x workers)")
		cache   = flag.Int("cache", 4096, "cached results (negative disables retention)")
		timeout = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	engine := service.NewEngine(service.EngineOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("rpserve: listening on %s (%d workers)", *addr, engine.Stats().Workers)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("rpserve: %v, draining for up to %s", sig, *drain)
	case err := <-errc:
		fatalf("%v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("rpserve: http shutdown: %v", err)
	}
	if err := engine.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rpserve: engine shutdown: %v", err)
	}
	log.Printf("rpserve: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpserve: "+format+"\n", args...)
	os.Exit(1)
}
